"""Command-line interface: run query scripts against ``.cdb`` databases.

The zero-code path into the system::

    python -m repro query db.cdb script.cqa          # run a script file
    python -m repro query db.cdb -e "R0 = select t >= 4 from Hurricane"
    python -m repro show db.cdb [RelationName]       # inspect a database
    python -m repro serve db.cdb --port 7411         # multi-tenant server
    python -m repro ingest db.cdb --put new.cdb      # durable writes (WAL)
    python -m repro demo                             # the §3.3 case study

Scripts are the paper's ASCII multi-step language (one statement per
line); the last statement's result is printed, and ``--save OUT.cdb``
writes every bound result to a new database file.  ``serve`` runs the
long-lived asyncio front end (see ``docs/SERVER.md``): the budget flags
then set the *per-tenant default* budget every request runs under.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .errors import (
    ParseError,
    ReproError,
    ResourceExhausted,
    StaticAnalysisError,
    StorageError,
)
from .governor import Budget
from .model import Database
from .query import QuerySession
from .query.lexer import split_statements as _statement_lines
from .storage import load_database, save_database

#: Distinct exit codes so scripts can tell failure classes apart
#: (argparse itself exits 2 on bad usage).
EXIT_ERROR = 1  # any other engine error
EXIT_USAGE = 2
EXIT_PARSE = 3  # query text did not parse
EXIT_BUDGET = 4  # a resource budget was exhausted
EXIT_STORAGE = 5  # database file unreadable, corrupted, or unwritable
#: ``--lint`` reuses exit code 2 for "the script has error-level
#: diagnostics", mirroring the convention of compiler-style linters.
EXIT_LINT = 2


def _budget_from_args(args: argparse.Namespace) -> Budget | None:
    knobs = {
        "deadline_seconds": args.deadline,
        "solver_steps": args.max_solver_steps,
        "dnf_clauses": args.max_dnf_clauses,
        "output_tuples": args.max_output,
        "io_accesses": args.max_io,
    }
    if all(value is None for value in knobs.values()):
        return None
    return Budget(on_exhausted=args.on_exhausted, **knobs)


def _cmd_query(args: argparse.Namespace) -> int:
    database = load_database(Path(args.database))
    if args.expression:
        script = "\n".join(args.expression)
    elif args.script:
        script = Path(args.script).read_text(encoding="utf-8")
    else:
        print("error: provide a script file or -e statements", file=sys.stderr)
        return 2
    session = QuerySession(
        database,
        use_optimizer=not args.no_optimizer,
        budget=_budget_from_args(args),
        analysis=args.analysis,
        workers=args.workers,
        exec_mode=args.exec_mode,
    )
    with session:
        return _run_query(session, script, args)


def _run_query(session: QuerySession, script: str, args: argparse.Namespace) -> int:
    if args.lint:
        diagnostics = session.analyze(script)
        print(diagnostics.render())
        return EXIT_LINT if diagnostics.has_errors else 0
    if args.analysis == "warn":
        # Surface the whole script's findings up front; execution below
        # still analyzes per statement (recording last_diagnostics).
        diagnostics = session.analyze(script)
        if diagnostics:
            print(diagnostics.render(), file=sys.stderr)
    if args.explain:
        for _, statement in _statement_lines(script):
            print(f"-- {statement}")
            print(session.explain(statement))
            session.execute(statement)  # later steps need earlier bindings
        return 0
    if args.profile:
        result = None
        for _, statement in _statement_lines(script):
            report = session.explain_analyze(statement)
            result = report.result
            print(report, file=sys.stderr)
            print(file=sys.stderr)
        if result is None:
            print("error: empty script", file=sys.stderr)
            return 2
        print("-- session metrics --", file=sys.stderr)
        print(session.registry.report(), file=sys.stderr)
    else:
        result = session.run_script(script)
    shown = result.simplify() if args.simplify else result
    print(shown.pretty(limit=args.limit))
    if result.truncated:
        print(
            "warning: result truncated (resource budget exhausted; "
            f"{session.budget.summary()})",
            file=sys.stderr,
        )
    if args.save:
        out = Database()
        for name, relation in session.results.items():
            out.add(name, relation)
        save_database(out, args.save)
        print(f"(saved {len(out)} result relations to {args.save})", file=sys.stderr)
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    import signal

    from .obs import SERVER_DRAINED, SERVER_REPLIES_OK
    from .server import QueryServer, ServerConfig
    from .storage.wal import open_durable

    # Open durably: recover the WAL into the served catalog, then release
    # the append handle (the server never writes; ``reload`` re-opens).
    source = Path(args.database)
    with open_durable(source) as durable:
        database = durable.database
        recovery = durable.recovery
    if recovery.replayed_records or recovery.truncated_bytes:
        print(
            f"repro-server recovered {args.database}: "
            f"{recovery.committed_transactions} committed transaction(s) replayed, "
            f"{recovery.rolled_back_transactions} rolled back, "
            f"{recovery.truncated_bytes} torn byte(s) truncated",
            flush=True,
        )
    config = ServerConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        max_queue=args.max_queue,
        session_workers=args.session_workers,
        exec_mode=args.exec_mode,
        analysis=args.analysis,
        use_optimizer=not args.no_optimizer,
        drain_timeout=args.drain_timeout,
        session_ttl=args.session_ttl,
        deadline_seconds=args.deadline,
        solver_steps=args.max_solver_steps,
        dnf_clauses=args.max_dnf_clauses,
        output_tuples=args.max_output,
        io_accesses=args.max_io,
        on_exhausted=args.on_exhausted,
    )

    async def main() -> int:
        server = QueryServer(database, config, source=source)
        await server.start()
        # The exact bound address on stdout (before anything else) so
        # wrappers and the CI smoke step can scrape an ephemeral port.
        print(
            f"repro-server listening on {server.host}:{server.port} "
            f"(workers={config.workers}, queue={config.max_queue})",
            flush=True,
        )
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, stop.set)
            except NotImplementedError:  # pragma: no cover - non-Unix loops
                pass
        try:
            # SIGHUP = hot reload, the classic daemon convention: re-read
            # the database file and swap snapshots under live traffic.
            loop.add_signal_handler(signal.SIGHUP, server.reload_soon)
        except (NotImplementedError, AttributeError):  # pragma: no cover
            pass
        await server.serve_until(stop)
        print(
            "repro-server drained cleanly "
            f"(replies={int(server.registry.value(SERVER_REPLIES_OK))}, "
            f"completed during drain={int(server.registry.value(SERVER_DRAINED))})",
            flush=True,
        )
        return 0

    return asyncio.run(main())


def _cmd_ingest(args: argparse.Namespace) -> int:
    """The durable write path from the shell: append/commit mutations
    through the WAL, recover after crashes, checkpoint into the image
    (see docs/DURABILITY.md)."""
    from .storage.wal import open_durable, wal_path_for

    path = Path(args.database)
    puts = args.put or []
    appends = args.append or []
    drops = args.drop or []
    mutating = bool(puts or appends or drops)
    if args.status and mutating:
        print("error: --status does not combine with mutations", file=sys.stderr)
        return EXIT_USAGE

    with open_durable(path, fsync=not args.no_fsync) as durable:
        report = durable.recovery
        if report.records or report.truncated_bytes or args.recover or args.status:
            print(
                f"recovery: {report.records} WAL record(s), "
                f"{report.committed_transactions} committed transaction(s) replayed, "
                f"{report.rolled_back_transactions} rolled back, "
                f"{report.truncated_bytes} torn byte(s) truncated"
            )
        if args.status:
            for name in durable.database:
                print(f"  {name}: {len(durable.database[name])} tuples")
            print(
                f"wal: {wal_path_for(path).name} at {durable.wal.position} bytes, "
                f"{len(durable.wal.records)} record(s) pending checkpoint"
            )
            return 0
        if mutating:
            with durable.begin() as txn:
                for file in puts:
                    source = load_database(Path(file))
                    for name in source:
                        txn.put_relation(name, source[name])
                        print(f"put {name}: {len(source[name])} tuples (from {file})")
                for rel, file in appends:
                    source = load_database(Path(file))
                    txn.append_tuples(rel, list(source[rel]))
                    print(f"append {rel}: +{len(source[rel])} tuples (from {file})")
                for rel in drops:
                    txn.drop_relation(rel)
                    print(f"drop {rel}")
            print("committed (WAL fsynced)" if not args.no_fsync else "committed (no fsync)")
        if (mutating and not args.no_checkpoint) or args.recover:
            durable.checkpoint()
            print(
                f"checkpointed {path.name}: {len(durable.database)} relation(s); WAL reset"
            )
        elif mutating:
            print(
                f"wal: {len(durable.wal.records)} record(s) pending "
                "(run with --recover to fold them into the image)"
            )
    return 0


def _cmd_show(args: argparse.Namespace) -> int:
    database = load_database(Path(args.database))
    names = [args.relation] if args.relation else list(database)
    for name in names:
        print(database[name].pretty(limit=args.limit))
        print()
    return 0


def _cmd_demo(args: argparse.Namespace) -> int:
    from .experiments.hurricane_queries import main as hurricane_main

    hurricane_main()
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    import json
    import time

    from .experiments import fig4, fig5

    module = fig4 if args.figure == "fig4" else fig5
    kwargs: dict[str, object] = {"workers": args.workers}
    if args.data_size is not None:
        kwargs["data_size"] = args.data_size
    if args.query_count is not None:
        kwargs["query_count"] = args.query_count
    started = time.perf_counter()
    result = module.run(**kwargs)
    elapsed = time.perf_counter() - started
    if args.json:
        print(
            json.dumps(
                {
                    "experiment_id": result.experiment_id,
                    "title": result.title,
                    "workers": args.workers,
                    "elapsed_seconds": elapsed,
                    "series": [
                        {
                            "label": series.label,
                            "x_label": series.x_label,
                            "mean_joint": series.mean_joint,
                            "mean_separate": series.mean_separate,
                            "advantage": series.joint_advantage,
                            "points": len(series.measurements),
                        }
                        for series in result.series
                    ],
                    "notes": result.notes,
                },
                indent=2,
            )
        )
    else:
        print(result.format_table())
        print(f"\n(elapsed {elapsed:.2f}s, workers={args.workers})", file=sys.stderr)
    return 0


def _add_budget_arguments(parser: argparse.ArgumentParser, description: str) -> None:
    """The shared resource-limit flag group (``query`` budgets one
    statement; ``serve`` sets the per-tenant default budget)."""
    limits = parser.add_argument_group("resource limits", description)
    limits.add_argument(
        "--deadline", type=float, metavar="SECONDS", help="wall-clock deadline per statement"
    )
    limits.add_argument(
        "--max-solver-steps", type=int, metavar="N", help="elimination/simplex step budget"
    )
    limits.add_argument(
        "--max-dnf-clauses", type=int, metavar="N", help="DNF distribution/complement clause budget"
    )
    limits.add_argument(
        "--max-output", type=int, metavar="N", help="materialized tuple cap (intermediates included)"
    )
    limits.add_argument(
        "--max-io", type=int, metavar="N", help="simulated IO cap (index node visits + page reads)"
    )
    limits.add_argument(
        "--on-exhausted",
        choices=("raise", "partial"),
        default="raise",
        help="exhaustion behaviour: fail the statement, or keep the tuples "
        "materialized so far and mark the result truncated",
    )


def _cmd_devtools_lint(args: argparse.Namespace) -> int:
    """``repro devtools lint`` — the RT linter over Python sources.

    Exit 0 when no error-severity findings remain after the baseline is
    applied (warnings/infos print but do not gate); otherwise
    ``EXIT_LINT`` (2), the compiler-linter convention ``--lint`` uses.
    """
    from .devtools import Baseline, lint_paths

    select = args.select.split(",") if args.select else None
    if args.write_baseline is not None:
        report = lint_paths(args.paths, select=select)
        baseline = Baseline.from_report(report)
        baseline.write(Path(args.write_baseline))
        print(f"wrote {len(baseline.fingerprints)} fingerprint(s) to {args.write_baseline}")
        return 0
    baseline = Baseline.load(Path(args.baseline)) if args.baseline else Baseline()
    report = lint_paths(args.paths, select=select, baseline=baseline)
    print(report.render())
    return EXIT_LINT if report.has_errors else 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="CQA/CDB: a rational linear constraint database (ICDE 2003 reproduction)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    query = commands.add_parser("query", help="run a multi-step CQA script")
    query.add_argument("database", help="a .cdb database file")
    query.add_argument("script", nargs="?", help="a query script file")
    query.add_argument(
        "-e",
        "--expression",
        action="append",
        metavar="STMT",
        help="inline statement (repeatable; used instead of a script file)",
    )
    query.add_argument("--save", metavar="OUT.cdb", help="save all bound results")
    query.add_argument("--limit", type=int, default=20, help="tuples shown per relation")
    query.add_argument("--simplify", action="store_true", help="simplify formulas before printing")
    query.add_argument("--no-optimizer", action="store_true", help="evaluate plans as written")
    query.add_argument(
        "--explain", action="store_true", help="print each statement's optimized plan"
    )
    query.add_argument(
        "--profile",
        action="store_true",
        help="EXPLAIN ANALYZE each statement: per-operator rows/accesses/timings "
        "on stderr, plus a session metrics report",
    )
    query.add_argument(
        "--lint",
        action="store_true",
        help="statically analyze the script and print its diagnostics without "
        "executing it; exits 2 when error-level diagnostics are found "
        "(see docs/STATIC_ANALYSIS.md)",
    )
    query.add_argument(
        "--analysis",
        choices=("off", "warn", "strict"),
        default="off",
        help="analyze each statement before running it: 'warn' records "
        "diagnostics (printed on stderr), 'strict' refuses to execute "
        "statements with error-level diagnostics",
    )
    query.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="evaluate statements with N parallel workers (morsel-driven; "
        "results are identical to serial — see docs/PARALLELISM.md); "
        "defaults to $REPRO_WORKERS or 1",
    )
    query.add_argument(
        "--exec-mode",
        choices=("auto", "process", "thread", "row", "columnar"),
        default=None,
        help="execution flavour: 'columnar' turns on the vectorized fast "
        "path (bit-identical results — see docs/COLUMNAR.md), 'row' forces "
        "it off, 'process'/'thread' pick the worker-pool kind; defaults to "
        "$REPRO_EXEC_MODE or 'auto'",
    )
    _add_budget_arguments(query, "per-statement budget (see docs/QUERY_LANGUAGE.md)")
    query.set_defaults(handler=_cmd_query)

    serve = commands.add_parser(
        "serve", help="run the multi-tenant query server (docs/SERVER.md)"
    )
    serve.add_argument("database", help="a .cdb database file")
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument(
        "--port",
        type=int,
        default=7411,
        help="TCP port (0 picks an ephemeral port, announced on stdout)",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=2,
        metavar="N",
        help="concurrently executing queries (the server's thread pool)",
    )
    serve.add_argument(
        "--max-queue",
        type=int,
        default=8,
        metavar="N",
        help="queries allowed to wait for a worker before the server sheds "
        "with a 429-style 'overloaded' reply",
    )
    serve.add_argument(
        "--session-workers",
        type=int,
        default=1,
        metavar="N",
        help="morsel-parallel workers per tenant session "
        "(the query-side --workers; see docs/PARALLELISM.md)",
    )
    serve.add_argument(
        "--exec-mode",
        choices=("auto", "process", "thread", "row", "columnar"),
        default=None,
        help="execution flavour for every tenant session ('columnar' = the "
        "vectorized fast path; see docs/COLUMNAR.md); defaults to "
        "$REPRO_EXEC_MODE or 'auto'",
    )
    serve.add_argument(
        "--analysis",
        choices=("off", "warn", "strict"),
        default="off",
        help="static-analysis mode applied to every tenant session",
    )
    serve.add_argument("--no-optimizer", action="store_true", help="evaluate plans as written")
    serve.add_argument(
        "--drain-timeout",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="graceful-shutdown ceiling for in-flight queries",
    )
    serve.add_argument(
        "--session-ttl",
        type=float,
        default=None,
        metavar="SECONDS",
        help="evict tenant sessions idle longer than this (their bindings "
        "are dropped; the next request re-creates the session)",
    )
    _add_budget_arguments(
        serve,
        "per-tenant default budget applied to every request "
        "(requests may tighten these, never loosen them)",
    )
    serve.set_defaults(handler=_cmd_serve)

    ingest = commands.add_parser(
        "ingest",
        help="write through the WAL: put/append/drop relations durably, "
        "recover after a crash, checkpoint (docs/DURABILITY.md)",
    )
    ingest.add_argument("database", help="the .cdb database file (created if missing)")
    ingest.add_argument(
        "--put",
        action="append",
        metavar="FILE.cdb",
        help="create or replace every relation found in FILE.cdb (repeatable)",
    )
    ingest.add_argument(
        "--append",
        action="append",
        nargs=2,
        metavar=("REL", "FILE.cdb"),
        help="append FILE.cdb's tuples of relation REL to the existing REL "
        "(repeatable)",
    )
    ingest.add_argument(
        "--drop", action="append", metavar="REL", help="drop relation REL (repeatable)"
    )
    ingest.add_argument(
        "--recover",
        action="store_true",
        help="replay the WAL and fold it into the image even without mutations "
        "(recovery itself always runs on open)",
    )
    ingest.add_argument(
        "--status",
        action="store_true",
        help="report the recovered state (relations, pending WAL records) "
        "without mutating anything",
    )
    ingest.add_argument(
        "--no-checkpoint",
        action="store_true",
        help="leave committed records in the WAL instead of folding them "
        "into the image after the transaction",
    )
    ingest.add_argument(
        "--no-fsync",
        action="store_true",
        help="skip fsync barriers (faster, but a machine crash may lose the "
        "commit; a process crash still cannot corrupt the database)",
    )
    ingest.set_defaults(handler=_cmd_ingest)

    show = commands.add_parser("show", help="print relations of a database")
    show.add_argument("database", help="a .cdb database file")
    show.add_argument("relation", nargs="?", help="show one relation only")
    show.add_argument("--limit", type=int, default=20)
    show.set_defaults(handler=_cmd_show)

    demo = commands.add_parser("demo", help="run the Hurricane case study (§3.3)")
    demo.set_defaults(handler=_cmd_demo)

    experiment = commands.add_parser(
        "experiment", help="run a paper experiment (figure 4 or 5)"
    )
    experiment.add_argument("figure", choices=("fig4", "fig5"), help="which figure to run")
    experiment.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="dispatch the four (variant × strategy) series to N workers",
    )
    experiment.add_argument(
        "--data-size", type=int, default=None, metavar="N", help="number of data boxes"
    )
    experiment.add_argument(
        "--query-count", type=int, default=None, metavar="N", help="number of queries"
    )
    experiment.add_argument(
        "--json", action="store_true", help="emit the binned series as JSON"
    )
    experiment.set_defaults(handler=_cmd_experiment)

    devtools = commands.add_parser(
        "devtools",
        help="runtime-invariant tooling (RT diagnostics, see docs/DEVTOOLS.md)",
    )
    devtools_actions = devtools.add_subparsers(dest="action", required=True)
    lint = devtools_actions.add_parser(
        "lint", help="AST-lint Python sources for RT1xx-RT4xx violations"
    )
    lint.add_argument(
        "paths", nargs="+", help="Python files or directories (e.g. src/repro)"
    )
    lint.add_argument(
        "--baseline",
        default=None,
        metavar="FILE",
        help="JSON baseline of accepted finding fingerprints (missing file "
        "= empty baseline)",
    )
    lint.add_argument(
        "--write-baseline",
        default=None,
        metavar="FILE",
        help="write the current findings as a baseline file and exit 0",
    )
    lint.add_argument(
        "--select",
        default=None,
        metavar="CODES",
        help="comma-separated RT codes to run (default: all rules)",
    )
    lint.set_defaults(handler=_cmd_devtools_lint)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except ParseError as exc:
        print(f"error[parse]: {exc}", file=sys.stderr)
        return EXIT_PARSE
    except StaticAnalysisError as exc:
        print(f"error[analysis]: {exc}", file=sys.stderr)
        return EXIT_ERROR
    except ResourceExhausted as exc:
        print(f"error[budget:{exc.resource or 'unknown'}]: {exc}", file=sys.stderr)
        return EXIT_BUDGET
    except StorageError as exc:
        print(f"error[storage]: {exc}", file=sys.stderr)
        return EXIT_STORAGE
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_ERROR
    except FileNotFoundError as exc:
        print(f"error[storage]: {exc}", file=sys.stderr)
        return EXIT_STORAGE


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
