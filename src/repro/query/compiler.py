"""Compile query-language ASTs into CQA plans.

The interesting work is condition compilation: the language writes
``LandID=A`` for a string equality and ``t>=4`` for a linear constraint
with the *same* surface syntax, so identifiers are resolved against the
schema of the referenced relation — a bare identifier that names a string
attribute makes the comparison a string predicate, and a bare identifier
that names nothing is a string *constant* (the ``A`` in the paper's Query
1).  Everything else must be a rational linear expression.
"""

from __future__ import annotations

from typing import Mapping

from ..algebra.plan import Join, PlanNode, Project, Rename, Scan, Select, Union
from ..algebra.plan import Difference as DifferenceNode
from ..algebra.predicates import Predicate, StringPredicate
from ..constraints import LinearExpression, eq, ge, gt, le, lt
from ..errors import QueryError
from ..model.schema import Schema
from ..model.types import DataType
from ..spatial.plan_nodes import BufferJoinNode, KNearestNode
from .ast import (
    BinaryOp,
    BufferJoinStmt,
    Comparison,
    CrossStmt,
    DiffStmt,
    ExprAST,
    Identifier,
    IntersectStmt,
    JoinStmt,
    KNearestStmt,
    Negate,
    NumberLit,
    ProjectStmt,
    RenameStmt,
    SelectStmt,
    StatementBody,
    StringLit,
    UnionStmt,
)

_SchemaMap = Mapping[str, Schema]


def _schema_for(schemas: _SchemaMap, name: str) -> Schema:
    try:
        return schemas[name]
    except KeyError:
        known = ", ".join(sorted(schemas)) or "(none)"
        raise QueryError(f"unknown relation {name!r}; known relations: {known}") from None


def compile_statement(body: StatementBody, schemas: _SchemaMap) -> PlanNode:
    """Compile one statement body into a plan over :class:`Scan` leaves."""
    if isinstance(body, SelectStmt):
        schema = _schema_for(schemas, body.source)
        predicates = compile_conditions(body.conditions, schema)
        return Select(Scan(body.source), predicates)
    if isinstance(body, ProjectStmt):
        _schema_for(schemas, body.source)
        return Project(Scan(body.source), body.attributes)
    if isinstance(body, JoinStmt):
        _schema_for(schemas, body.left)
        _schema_for(schemas, body.right)
        return Join(Scan(body.left), Scan(body.right))
    if isinstance(body, IntersectStmt):
        # ∩ is natural join over union-compatible schemas (§2.4 remark);
        # verify compatibility at compile time so a typo fails loudly.
        _schema_for(schemas, body.left).union_compatible(_schema_for(schemas, body.right))
        return Join(Scan(body.left), Scan(body.right))
    if isinstance(body, CrossStmt):
        left_schema = _schema_for(schemas, body.left)
        right_schema = _schema_for(schemas, body.right)
        shared = left_schema.shared_names(right_schema)
        if shared:
            raise QueryError(
                f"cross requires disjoint schemas; shared attributes {list(shared)} "
                "(rename them first, or use join)"
            )
        return Join(Scan(body.left), Scan(body.right))
    if isinstance(body, UnionStmt):
        _schema_for(schemas, body.left)
        _schema_for(schemas, body.right)
        return Union(Scan(body.left), Scan(body.right))
    if isinstance(body, DiffStmt):
        _schema_for(schemas, body.left)
        _schema_for(schemas, body.right)
        return DifferenceNode(Scan(body.left), Scan(body.right))
    if isinstance(body, RenameStmt):
        _schema_for(schemas, body.source)
        return Rename(Scan(body.source), body.old, body.new)
    if isinstance(body, BufferJoinStmt):
        _schema_for(schemas, body.left)
        _schema_for(schemas, body.right)
        return BufferJoinNode(
            Scan(body.left), Scan(body.right), body.distance, body.left_attr, body.right_attr
        )
    if isinstance(body, KNearestStmt):
        _schema_for(schemas, body.source)
        query_child = None
        if body.query_source is not None:
            _schema_for(schemas, body.query_source)
            query_child = Scan(body.query_source)
        return KNearestNode(
            Scan(body.source), body.query_fid, body.k, query_child=query_child
        )
    raise QueryError(f"unsupported statement body {body!r}")


def compile_conditions(
    conditions: tuple[Comparison, ...], schema: Schema
) -> list[Predicate]:
    return [_compile_comparison(comparison, schema) for comparison in conditions]


def _is_string_side(expr: ExprAST, schema: Schema) -> bool:
    if isinstance(expr, StringLit):
        return True
    if isinstance(expr, Identifier):
        name = expr.name
        return name in schema and schema[name].data_type is DataType.STRING
    return False


def _compile_comparison(comparison: Comparison, schema: Schema) -> Predicate:
    left_string = _is_string_side(comparison.left, schema)
    right_string = _is_string_side(comparison.right, schema)
    if left_string or right_string:
        return _compile_string_predicate(comparison, schema)
    left = _compile_linear(comparison.left, schema)
    right = _compile_linear(comparison.right, schema)
    op = comparison.op
    if op == "<=":
        return le(left, right)
    if op == "<":
        return lt(left, right)
    if op == ">=":
        return ge(left, right)
    if op == ">":
        return gt(left, right)
    if op == "=":
        return eq(left, right)
    raise QueryError(
        "'!=' over rational attributes is not a conjunctive linear constraint; "
        "express it as the union of a '<' and a '>' selection (section 2.4)"
    )


def _compile_string_predicate(comparison: Comparison, schema: Schema) -> StringPredicate:
    if comparison.op not in ("=", "!="):
        raise QueryError(
            f"string attributes support only '=' and '!=', not {comparison.op!r}"
        )
    negated = comparison.op == "!="

    def classify(expr: ExprAST) -> tuple[str, str]:
        """Classify one side: ('attr', name) or ('const', value)."""
        if isinstance(expr, StringLit):
            return ("const", expr.value)
        if isinstance(expr, Identifier):
            if expr.name in schema:
                attr = schema[expr.name]
                if attr.data_type is DataType.STRING:
                    return ("attr", expr.name)
                raise QueryError(
                    f"cannot compare string and rational: {expr.name!r} is a "
                    f"{attr.data_type.value} attribute"
                )
            # A bare identifier that names no attribute is a string constant
            # (the paper writes `select LandID=A from Landownership`).
            return ("const", expr.name)
        raise QueryError("string comparisons take an attribute, a quoted string, or a bare word")

    left_kind, left_value = classify(comparison.left)
    right_kind, right_value = classify(comparison.right)
    if left_kind == "attr" and right_kind == "attr":
        return StringPredicate(left_value, right_value, negated, is_attribute=True)
    if left_kind == "attr":
        return StringPredicate(left_value, right_value, negated)
    if right_kind == "attr":
        return StringPredicate(right_value, left_value, negated)
    raise QueryError(
        f"string comparison {left_value!r} {comparison.op} {right_value!r} references "
        "no attribute of the relation"
    )


def _compile_linear(expr: ExprAST, schema: Schema) -> LinearExpression:
    if isinstance(expr, NumberLit):
        return LinearExpression.constant_expr(expr.value)
    if isinstance(expr, StringLit):
        raise QueryError(f"string literal {expr.value!r} in a numeric expression")
    if isinstance(expr, Identifier):
        if expr.name not in schema:
            raise QueryError(
                f"unknown attribute {expr.name!r} (schema: {', '.join(schema.names)})"
            )
        attr = schema[expr.name]
        if attr.data_type is not DataType.RATIONAL:
            raise QueryError(f"string attribute {expr.name!r} in a numeric expression")
        return LinearExpression.variable(expr.name)
    if isinstance(expr, Negate):
        return -_compile_linear(expr.operand, schema)
    if isinstance(expr, BinaryOp):
        left = _compile_linear(expr.left, schema)
        right = _compile_linear(expr.right, schema)
        if expr.op == "+":
            return left + right
        if expr.op == "-":
            return left - right
        if expr.op == "*":
            return left * right  # ConstraintError if both are non-constant
        if not right.is_constant:
            raise QueryError("division by a variable expression is non-linear")
        return left / right.constant
    raise QueryError(f"unsupported expression {expr!r}")
