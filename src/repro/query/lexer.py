"""Tokenizer for the CQA/CDB ASCII query language.

The paper runs its queries in a portable ASCII form ("we use their English
equivalents … This allows queries to be representable in ASCII"), e.g.::

    R0 = select t>=4, t<=9 from Hurricane
    R1 = project R0 on landID

Tokens: identifiers, numbers (``10``, ``2.5``, ``1/3``), double-quoted
strings, comparison and arithmetic operators, commas and parentheses.
Keywords are recognised case-insensitively at parse time, not here, so an
attribute may shadow a keyword anywhere a keyword is not expected.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterator

from ..errors import ParseError

_TOKEN_RE = re.compile(
    r"""
    (?P<number>\d+(?:\.\d+)?(?:/\d+)?)
  | (?P<ident>[A-Za-z_][A-Za-z_0-9]*)
  | (?P<string>"(?:[^"\\]|\\.)*")
  | (?P<op><=|>=|==|!=|[-+*/()<>=,])
  | (?P<ws>[ \t]+)
  | (?P<bad>.)
    """,
    re.VERBOSE,
)


@dataclass(frozen=True)
class Token:
    kind: str  # "number" | "ident" | "string" | "op" | "end"
    text: str
    line: int
    column: int

    def matches_keyword(self, keyword: str) -> bool:
        return self.kind == "ident" and self.text.lower() == keyword


def tokenize_line(text: str, line_no: int = 1) -> list[Token]:
    """Tokenize one statement line; appends an ``end`` token."""
    tokens: list[Token] = []
    for match in _TOKEN_RE.finditer(text):
        kind = match.lastgroup
        if kind == "ws":
            continue
        if kind == "bad":
            raise ParseError(
                f"unexpected character {match.group()!r}", line_no, match.start() + 1
            )
        value = match.group()
        if kind == "string":
            value = _unescape(value, line_no, match.start() + 1)
        tokens.append(Token(kind, value, line_no, match.start() + 1))
    tokens.append(Token("end", "", line_no, len(text) + 1))
    return tokens


def _unescape(literal: str, line: int, column: int) -> str:
    body = literal[1:-1]
    chunks: list[str] = []
    i = 0
    while i < len(body):
        ch = body[i]
        if ch == "\\":
            if i + 1 >= len(body):
                raise ParseError("dangling escape in string literal", line, column)
            chunks.append(body[i + 1])
            i += 2
        else:
            chunks.append(ch)
            i += 1
    return "".join(chunks)


def split_statements(script: str) -> Iterator[tuple[int, str]]:
    """Yield ``(line number, statement text)`` for each non-empty,
    non-comment line of a query script."""
    for line_no, raw in enumerate(script.splitlines(), start=1):
        stripped = raw.strip()
        if not stripped or stripped.startswith("#") or stripped.startswith("--"):
            continue
        yield line_no, stripped
