"""Tokenizer for the CQA/CDB ASCII query language.

The paper runs its queries in a portable ASCII form ("we use their English
equivalents … This allows queries to be representable in ASCII"), e.g.::

    R0 = select t>=4, t<=9 from Hurricane
    R1 = project R0 on landID

Tokens: identifiers, numbers (``10``, ``2.5``, ``1/3``), double-quoted
strings, comparison and arithmetic operators, commas and parentheses.
Keywords are recognised case-insensitively at parse time, not here, so an
attribute may shadow a keyword anywhere a keyword is not expected.

Every token carries its source position — line, start column and end
column, all 1-based with the end exclusive — so parse errors and static
analysis diagnostics (:mod:`repro.analysis`) can point at the exact
source range that produced them.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterator

from ..errors import ParseError

_TOKEN_RE = re.compile(
    r"""
    (?P<number>\d+(?:\.\d+)?(?:/\d+)?)
  | (?P<ident>[A-Za-z_][A-Za-z_0-9]*)
  | (?P<string>"(?:[^"\\]|\\.)*")
  | (?P<op><=|>=|==|!=|[-+*/()<>=,])
  | (?P<ws>[ \t]+)
  | (?P<bad>.)
    """,
    re.VERBOSE,
)


@dataclass(frozen=True)
class Token:
    kind: str  # "number" | "ident" | "string" | "op" | "end"
    text: str
    line: int
    column: int
    #: One past the last source column of the token (1-based, exclusive).
    #: Derived from the raw match, so string tokens keep their quoted
    #: source width even though ``text`` holds the unescaped value.
    end_column: int = 0

    def matches_keyword(self, keyword: str) -> bool:
        return self.kind == "ident" and self.text.lower() == keyword


def tokenize_line(text: str, line_no: int = 1) -> list[Token]:
    """Tokenize one statement line; appends an ``end`` token."""
    tokens: list[Token] = []
    for match in _TOKEN_RE.finditer(text):
        kind = match.lastgroup
        if kind == "ws":
            continue
        if kind == "bad":
            raise ParseError(
                f"unexpected character {match.group()!r}", line_no, match.start() + 1
            )
        value = match.group()
        if kind == "string":
            value = _unescape(value, line_no, match.start() + 1)
        assert kind is not None
        tokens.append(Token(kind, value, line_no, match.start() + 1, match.end() + 1))
    end_column = len(text) + 1
    tokens.append(Token("end", "", line_no, end_column, end_column))
    return tokens


def _unescape(literal: str, line: int, column: int) -> str:
    body = literal[1:-1]
    chunks: list[str] = []
    i = 0
    while i < len(body):
        ch = body[i]
        if ch == "\\":
            if i + 1 >= len(body):
                raise ParseError("dangling escape in string literal", line, column)
            chunks.append(body[i + 1])
            i += 2
        else:
            chunks.append(ch)
            i += 1
    return "".join(chunks)


def split_statements(script: str) -> Iterator[tuple[int, str]]:
    """Yield ``(line number, statement text)`` for each non-empty,
    non-comment line of a query script.

    The statement text keeps the line's original leading whitespace
    (only trailing whitespace is removed), so token columns — and hence
    parse errors and analysis diagnostics — refer to columns of the
    *source* line, not of a stripped copy.
    """
    for line_no, raw in enumerate(script.splitlines(), start=1):
        stripped = raw.strip()
        if not stripped or stripped.startswith("#") or stripped.startswith("--"):
            continue
        yield line_no, raw.rstrip()
