"""Abstract syntax for the ASCII query language.

Expressions are kept generic at parse time — an identifier might be a
constraint attribute, a rational relational attribute, or (bare, in an
equality) a string constant like the ``A`` in the paper's
``select LandID=A from Landownership``.  The compiler
(:mod:`repro.query.compiler`) resolves identifiers against the schema of
the referenced relation.

Nodes that diagnostics point at carry an optional
:class:`~repro.analysis.diagnostics.SourceSpan` populated by the parser.
Spans are excluded from equality/hash so that two ASTs with the same
structure compare equal regardless of where they were written.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Union

from ..analysis.diagnostics import SourceSpan


# -- expression nodes --------------------------------------------------------


@dataclass(frozen=True)
class NumberLit:
    value: Fraction


@dataclass(frozen=True)
class StringLit:
    value: str


@dataclass(frozen=True)
class Identifier:
    name: str
    span: SourceSpan | None = field(default=None, compare=False, repr=False)


@dataclass(frozen=True)
class BinaryOp:
    op: str  # '+', '-', '*', '/'
    left: "ExprAST"
    right: "ExprAST"


@dataclass(frozen=True)
class Negate:
    operand: "ExprAST"


ExprAST = Union[NumberLit, StringLit, Identifier, BinaryOp, Negate]


@dataclass(frozen=True)
class Comparison:
    """A single ``left op right`` conjunct; chains are expanded by the
    parser into adjacent comparisons."""

    left: ExprAST
    op: str  # '<=', '<', '>=', '>', '=', '!='
    right: ExprAST
    span: SourceSpan | None = field(default=None, compare=False, repr=False)


# -- statements ---------------------------------------------------------------


@dataclass(frozen=True)
class SelectStmt:
    conditions: tuple[Comparison, ...]
    source: str
    span: SourceSpan | None = field(default=None, compare=False, repr=False)


@dataclass(frozen=True)
class ProjectStmt:
    source: str
    attributes: tuple[str, ...]
    span: SourceSpan | None = field(default=None, compare=False, repr=False)


@dataclass(frozen=True)
class JoinStmt:
    left: str
    right: str
    span: SourceSpan | None = field(default=None, compare=False, repr=False)


@dataclass(frozen=True)
class IntersectStmt:
    """∩ — natural join restricted to union-compatible schemas."""

    left: str
    right: str
    span: SourceSpan | None = field(default=None, compare=False, repr=False)


@dataclass(frozen=True)
class CrossStmt:
    """× — natural join restricted to disjoint schemas."""

    left: str
    right: str
    span: SourceSpan | None = field(default=None, compare=False, repr=False)


@dataclass(frozen=True)
class UnionStmt:
    left: str
    right: str
    span: SourceSpan | None = field(default=None, compare=False, repr=False)


@dataclass(frozen=True)
class DiffStmt:
    left: str
    right: str
    span: SourceSpan | None = field(default=None, compare=False, repr=False)


@dataclass(frozen=True)
class RenameStmt:
    old: str
    new: str
    source: str
    span: SourceSpan | None = field(default=None, compare=False, repr=False)


@dataclass(frozen=True)
class BufferJoinStmt:
    left: str
    right: str
    distance: Fraction
    left_attr: str = "fid1"
    right_attr: str = "fid2"
    span: SourceSpan | None = field(default=None, compare=False, repr=False)


@dataclass(frozen=True)
class KNearestStmt:
    k: int
    query_fid: str
    source: str
    query_source: str | None = None  # 'of <relation>': cross-layer query
    span: SourceSpan | None = field(default=None, compare=False, repr=False)


StatementBody = Union[
    SelectStmt,
    ProjectStmt,
    JoinStmt,
    IntersectStmt,
    CrossStmt,
    UnionStmt,
    DiffStmt,
    RenameStmt,
    BufferJoinStmt,
    KNearestStmt,
]


@dataclass(frozen=True)
class Statement:
    """``target = body`` at some script line."""

    target: str
    body: StatementBody
    line: int
    #: The source text of the statement, when known (used by diagnostic
    #: rendering to quote the offending line under the caret).
    text: str | None = field(default=None, compare=False, repr=False)
