"""The ASCII multi-step query language front end (section 3.3).

Public surface:

* :class:`QuerySession` — execute scripts/statements against a database.
* :class:`ExplainAnalyzeReport` — ``explain_analyze``'s per-operator tree.
* :func:`parse_statement` / :func:`parse_script` — parsing only.
* :func:`compile_statement`, :func:`compile_conditions` — AST → plan.
"""

from .compiler import compile_conditions, compile_statement
from .parser import parse_script, parse_statement
from .session import ExplainAnalyzeReport, QuerySession, default_workers

__all__ = [
    "ExplainAnalyzeReport",
    "QuerySession",
    "default_workers",
    "compile_conditions",
    "compile_statement",
    "parse_script",
    "parse_statement",
]
