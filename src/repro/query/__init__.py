"""The ASCII multi-step query language front end (section 3.3).

Public surface:

* :class:`QuerySession` — execute scripts/statements against a database.
* :func:`parse_statement` / :func:`parse_script` — parsing only.
* :func:`compile_statement`, :func:`compile_conditions` — AST → plan.
"""

from .compiler import compile_conditions, compile_statement
from .parser import parse_script, parse_statement
from .session import QuerySession

__all__ = [
    "QuerySession",
    "compile_conditions",
    "compile_statement",
    "parse_script",
    "parse_statement",
]
