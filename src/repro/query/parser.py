"""Parser for the ASCII query language.

Grammar (one statement per line; keywords case-insensitive)::

    statement  := NAME '=' body
    body       := 'select' conditions 'from' NAME
                | 'project' NAME 'on' attrs
                | 'join' NAME 'and' NAME
                | 'union' NAME 'and' NAME
                | 'diff' NAME 'and' NAME
                | 'rename' NAME 'to' NAME 'in' NAME
                | 'bufferjoin' NAME 'and' NAME 'within' NUMBER
                      ['as' NAME ',' NAME]
                | 'knearest' NUMBER 'near' (NAME | STRING) 'in' NAME
    conditions := comparison (',' comparison)*
    comparison := expr (CMP expr)+          -- chains expand pairwise
    expr       := term (('+'|'-') term)*
    term       := factor (('*'|'/') factor)*
    factor     := NUMBER | NAME | STRING | '-' factor | '(' expr ')'

Every statement body and every comparison/identifier is annotated with a
:class:`~repro.analysis.diagnostics.SourceSpan` covering its source
tokens, which is what the static analyzer's diagnostics point at.
"""

from __future__ import annotations

from fractions import Fraction

from ..analysis.diagnostics import SourceSpan
from ..errors import ParseError
from .ast import (
    BinaryOp,
    BufferJoinStmt,
    Comparison,
    CrossStmt,
    DiffStmt,
    ExprAST,
    Identifier,
    IntersectStmt,
    JoinStmt,
    KNearestStmt,
    Negate,
    NumberLit,
    ProjectStmt,
    RenameStmt,
    SelectStmt,
    Statement,
    StatementBody,
    StringLit,
    UnionStmt,
)
from .lexer import Token, split_statements, tokenize_line

_COMPARATORS = {"<=", "<", ">=", ">", "=", "==", "!="}


class _StatementParser:
    def __init__(self, tokens: list[Token], line: int) -> None:
        self._tokens = tokens
        self._pos = 0
        self._line = line

    # -- token plumbing -----------------------------------------------------

    def _peek(self) -> Token:
        return self._tokens[self._pos]

    def _advance(self) -> Token:
        token = self._tokens[self._pos]
        self._pos += 1
        return token

    def _mark(self) -> int:
        """The index of the next token (start of a region of interest)."""
        return self._pos

    def _span_from(self, mark: int) -> SourceSpan:
        """The span from the token at ``mark`` through the last consumed
        token (inclusive); degenerates to a caret at the current token."""
        if self._pos <= mark:
            token = self._tokens[min(mark, len(self._tokens) - 1)]
            return _token_span(token)
        first = self._tokens[mark]
        last = self._tokens[self._pos - 1]
        return _token_span(first).merge(_token_span(last))

    def _error(self, message: str, token: Token | None = None) -> ParseError:
        token = token or self._peek()
        return ParseError(message, self._line, token.column)

    def _expect_ident(self, what: str) -> str:
        token = self._advance()
        if token.kind != "ident":
            raise self._error(f"expected {what}, found {token.text or 'end of line'!r}", token)
        return token.text

    def _expect_keyword(self, keyword: str) -> None:
        token = self._advance()
        if not token.matches_keyword(keyword):
            raise self._error(
                f"expected {keyword!r}, found {token.text or 'end of line'!r}", token
            )

    def _expect_op(self, op: str) -> None:
        token = self._advance()
        if token.kind != "op" or token.text != op:
            raise self._error(f"expected {op!r}, found {token.text or 'end of line'!r}", token)

    def _expect_number(self, what: str) -> Fraction:
        token = self._advance()
        negative = token.kind == "op" and token.text == "-"
        if negative:
            token = self._advance()
        if token.kind != "number":
            raise self._error(f"expected {what}, found {token.text or 'end of line'!r}", token)
        value = Fraction(token.text)
        return -value if negative else value

    def _at_end(self) -> bool:
        return self._peek().kind == "end"

    def _finish(self) -> None:
        if not self._at_end():
            raise self._error(f"trailing input {self._peek().text!r}")

    # -- grammar -------------------------------------------------------------

    def statement(self) -> Statement:
        target = self._expect_ident("a result name")
        self._expect_op("=")
        keyword_token = self._peek()
        if keyword_token.kind != "ident":
            raise self._error("expected an operation keyword")
        keyword = keyword_token.text.lower()
        handler = {
            "select": self._select,
            "project": self._project,
            "join": self._join,
            "intersect": self._intersect,
            "cross": self._cross,
            "union": self._union,
            "diff": self._diff,
            "difference": self._diff,
            "rename": self._rename,
            "bufferjoin": self._bufferjoin,
            "knearest": self._knearest,
        }.get(keyword)
        if handler is None:
            raise self._error(
                f"unknown operation {keyword_token.text!r} (expected select, project, "
                "join, intersect, cross, union, diff, rename, bufferjoin or knearest)"
            )
        body_mark = self._mark()
        self._advance()
        body = handler()
        self._finish()
        body = _with_span(body, self._span_from(body_mark))
        return Statement(target, body, self._line)

    def _select(self) -> SelectStmt:
        conditions = self._conditions()
        self._expect_keyword("from")
        source = self._expect_ident("a relation name")
        return SelectStmt(tuple(conditions), source)

    def _project(self) -> ProjectStmt:
        source = self._expect_ident("a relation name")
        self._expect_keyword("on")
        attributes = [self._expect_ident("an attribute name")]
        while self._peek().text == ",":
            self._advance()
            attributes.append(self._expect_ident("an attribute name"))
        return ProjectStmt(source, tuple(attributes))

    def _join(self) -> JoinStmt:
        left = self._expect_ident("a relation name")
        self._expect_keyword("and")
        right = self._expect_ident("a relation name")
        return JoinStmt(left, right)

    def _intersect(self) -> IntersectStmt:
        left = self._expect_ident("a relation name")
        self._expect_keyword("and")
        right = self._expect_ident("a relation name")
        return IntersectStmt(left, right)

    def _cross(self) -> CrossStmt:
        left = self._expect_ident("a relation name")
        self._expect_keyword("and")
        right = self._expect_ident("a relation name")
        return CrossStmt(left, right)

    def _union(self) -> UnionStmt:
        left = self._expect_ident("a relation name")
        self._expect_keyword("and")
        right = self._expect_ident("a relation name")
        return UnionStmt(left, right)

    def _diff(self) -> DiffStmt:
        left = self._expect_ident("a relation name")
        self._expect_keyword("and")
        right = self._expect_ident("a relation name")
        return DiffStmt(left, right)

    def _rename(self) -> RenameStmt:
        old = self._expect_ident("an attribute name")
        self._expect_keyword("to")
        new = self._expect_ident("an attribute name")
        self._expect_keyword("in")
        source = self._expect_ident("a relation name")
        return RenameStmt(old, new, source)

    def _bufferjoin(self) -> BufferJoinStmt:
        left = self._expect_ident("a relation name")
        self._expect_keyword("and")
        right = self._expect_ident("a relation name")
        self._expect_keyword("within")
        distance = self._expect_number("a distance")
        left_attr, right_attr = "fid1", "fid2"
        if self._peek().matches_keyword("as"):
            self._advance()
            left_attr = self._expect_ident("an attribute name")
            self._expect_op(",")
            right_attr = self._expect_ident("an attribute name")
        return BufferJoinStmt(left, right, distance, left_attr, right_attr)

    def _knearest(self) -> KNearestStmt:
        k_value = self._expect_number("a neighbour count")
        if k_value.denominator != 1 or k_value < 1:
            raise self._error(f"k must be a positive integer, got {k_value}")
        self._expect_keyword("near")
        token = self._advance()
        if token.kind not in ("ident", "string"):
            raise self._error("expected a feature id", token)
        query_source = None
        if self._peek().matches_keyword("of"):
            self._advance()
            query_source = self._expect_ident("a relation name")
        self._expect_keyword("in")
        source = self._expect_ident("a relation name")
        return KNearestStmt(int(k_value), token.text, source, query_source)

    # -- conditions ------------------------------------------------------------

    def _conditions(self) -> list[Comparison]:
        conditions = self._comparison_chain()
        while self._peek().text == ",":
            self._advance()
            conditions.extend(self._comparison_chain())
        return conditions

    def _comparison_chain(self) -> list[Comparison]:
        chain_mark = self._mark()
        left = self._expression()
        token = self._peek()
        if token.kind != "op" or token.text not in _COMPARATORS:
            raise self._error("expected a comparison operator")
        comparisons: list[Comparison] = []
        while self._peek().kind == "op" and self._peek().text in _COMPARATORS:
            op = self._advance().text
            if op == "==":
                op = "="
            right = self._expression()
            comparisons.append(
                Comparison(left, op, right, span=self._span_from(chain_mark))
            )
            left = right
            chain_mark = self._mark()  # next link starts at the shared operand…
        return comparisons

    def _expression(self) -> ExprAST:
        result = self._term()
        while self._peek().kind == "op" and self._peek().text in {"+", "-"}:
            op = self._advance().text
            result = BinaryOp(op, result, self._term())
        return result

    def _term(self) -> ExprAST:
        result = self._factor()
        while self._peek().kind == "op" and self._peek().text in {"*", "/"}:
            op = self._advance().text
            result = BinaryOp(op, result, self._factor())
        return result

    def _factor(self) -> ExprAST:
        token = self._advance()
        if token.kind == "number":
            return NumberLit(Fraction(token.text))
        if token.kind == "ident":
            return Identifier(token.text, span=_token_span(token))
        if token.kind == "string":
            return StringLit(token.text)
        if token.kind == "op" and token.text == "-":
            return Negate(self._factor())
        if token.kind == "op" and token.text == "+":
            return self._factor()
        if token.kind == "op" and token.text == "(":
            inner = self._expression()
            self._expect_op(")")
            return inner
        raise self._error(
            f"expected a value or attribute, found {token.text or 'end of line'!r}", token
        )


def _token_span(token: Token) -> SourceSpan:
    end = token.end_column if token.end_column > token.column else token.column + max(
        1, len(token.text)
    )
    return SourceSpan(token.line, token.column, end)


def _with_span(body: StatementBody, span: SourceSpan) -> StatementBody:
    """The body with its span attached (dataclasses are frozen, and span
    is a compare-excluded field, so this sidesteps ``replace``'s re-init)."""
    object.__setattr__(body, "span", span)
    return body


def parse_statement(text: str, line: int = 1) -> Statement:
    """Parse one ``NAME = operation`` statement."""
    statement = _StatementParser(tokenize_line(text, line), line).statement()
    object.__setattr__(statement, "text", text)
    return statement


def parse_script(script: str) -> list[Statement]:
    """Parse a multi-step query script (one statement per line; ``#`` and
    ``--`` start comments)."""
    statements = [parse_statement(text, line) for line, text in split_statements(script)]
    if not statements:
        raise ParseError("empty query script")
    return statements
