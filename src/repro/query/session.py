"""Multi-step query sessions.

CQA/CDB queries "are broken up into multiple steps … the last step of the
query produces the query output" (section 3.3).  A :class:`QuerySession`
executes a script statement by statement against a database: each
statement compiles to a plan, (optionally) passes through the optimizer,
is evaluated, and its result is bound to the statement's target name for
later steps to reference.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Mapping

from ..algebra.optimizer import Optimizer
from ..algebra.plan import EvaluationContext, Metrics, PlanNode, evaluate
from ..analysis.diagnostics import Diagnostics
from ..errors import OutputLimitExceeded, QueryError, StaticAnalysisError
from ..exec import ExecutionConfig, ExecutionEngine, columnar_mode, default_exec_mode, split_exec_mode
from ..governor.budget import Budget
from ..model.database import Database
from ..model.relation import ConstraintRelation
from ..model.schema import Schema
from ..obs import (
    COLUMNAR_BATCHES,
    COLUMNAR_BYPASSED,
    COLUMNAR_FALLBACK,
    COLUMNAR_FILTERED,
    EXEC_MORSELS,
    GOVERNOR_DNF_CLAUSES,
    GOVERNOR_OUTPUT_TUPLES,
    GOVERNOR_SOLVER_STEPS,
    LOGICAL_NODE_ACCESSES,
    PHYSICAL_NODE_ACCESSES,
    SATISFIABILITY_CHECKS,
    SOLVER_BOX_DECIDED,
    SOLVER_CACHE_HITS,
    SOLVER_INTERVAL_PRUNES,
    SOLVER_REQUESTS,
    WAL_APPENDS,
    WAL_COMMITS,
    MetricsRegistry,
    Span,
)
from .ast import Statement
from .compiler import compile_statement
from .parser import parse_script, parse_statement

#: Environment variable consulted when ``QuerySession(workers=None)``:
#: lets CI (and users) flip a whole test run to parallel sessions without
#: touching call sites.
WORKERS_ENV_VAR = "REPRO_WORKERS"


def default_workers() -> int:
    """The session default worker count: ``$REPRO_WORKERS`` or 1."""
    raw = os.environ.get(WORKERS_ENV_VAR, "").strip()
    if not raw:
        return 1
    try:
        workers = int(raw)
    except ValueError:
        raise ValueError(
            f"{WORKERS_ENV_VAR} must be a positive integer, got {raw!r}"
        ) from None
    if workers < 1:
        raise ValueError(f"{WORKERS_ENV_VAR} must be a positive integer, got {raw!r}")
    return workers

#: Per-node annotations shown by ``explain_analyze`` (label, counter).
_EXPLAIN_COUNTERS = (
    ("accesses", LOGICAL_NODE_ACCESSES),
    ("physical", PHYSICAL_NODE_ACCESSES),
)

#: Solver fast-path annotations, printed only when nonzero: ``sat`` is the
#: number of *full* decision-procedure solves the node paid for, while the
#: other labels count satisfiability answers the layered front-end produced
#: without a solve (see docs/QUERY_LANGUAGE.md, "Solver fast paths").
_EXPLAIN_SPARSE_COUNTERS = (
    ("sat", SATISFIABILITY_CHECKS),
    ("sat_cached", SOLVER_CACHE_HITS),
    ("interval_pruned", SOLVER_INTERVAL_PRUNES),
    ("box_decided", SOLVER_BOX_DECIDED),
    # Budget consumption mirrored at charge time; nonzero only when the
    # statement ran under an active Budget (see repro.governor).
    ("budget_steps", GOVERNOR_SOLVER_STEPS),
    ("budget_dnf", GOVERNOR_DNF_CLAUSES),
    ("budget_rows", GOVERNOR_OUTPUT_TUPLES),
    # Morsels dispatched to the parallel engine by this node; nonzero only
    # in ``QuerySession(workers=N)`` sessions (see docs/PARALLELISM.md).
    ("morsels", EXEC_MORSELS),
    # Columnar fast-path effectiveness; nonzero only in
    # ``exec_mode="columnar"`` sessions (see docs/COLUMNAR.md).
    ("col_batches", COLUMNAR_BATCHES),
    ("col_filtered", COLUMNAR_FILTERED),
    ("col_fallback", COLUMNAR_FALLBACK),
    ("col_bypassed", COLUMNAR_BYPASSED),
    # Durable-write activity attributable to this statement; nonzero only
    # when a WAL transaction ran under the session's registry (see
    # docs/DURABILITY.md).
    ("wal_appends", WAL_APPENDS),
    ("wal_commits", WAL_COMMITS),
)


@dataclass
class ExplainAnalyzeReport:
    """The outcome of executing one statement under tracing.

    ``root`` is the plan's span tree: one :class:`~repro.obs.Span` per
    operator, annotated with output ``rows``, captured counters (node
    accesses, solver calls, …) and inclusive wall-clock time.  Rendered
    counter values are per-operator (exclusive); :meth:`total` answers
    whole-statement questions — e.g. ``total(LOGICAL_NODE_ACCESSES)``
    equals the sum of the underlying trees' ``search_accesses`` deltas.
    """

    statement: str
    target: str
    result: ConstraintRelation
    root: Span
    #: One-line consumed/limit rendering of the governing budget's window
    #: (``None`` when the session has no budget attached).
    budget_summary: str | None = None
    #: One-line ``parallelism: workers=N …`` rendering of the execution
    #: engine's per-statement dispatch stats (``None`` for serial sessions
    #: and for statements that never dispatched a morsel).
    parallelism: str | None = None

    def columnar_summary(self) -> str | None:
        """One-line rendering of the columnar fast path's effectiveness,
        or ``None`` when the statement never probed it (row-mode
        sessions)."""
        batches = self.total(COLUMNAR_BATCHES)
        bypassed = self.total(COLUMNAR_BYPASSED)
        if not batches and not bypassed:
            return None
        filtered = self.total(COLUMNAR_FILTERED)
        fallback = self.total(COLUMNAR_FALLBACK)
        probed = filtered + fallback
        rate = (filtered / probed * 100.0) if probed else 0.0
        return (
            f"columnar: batches={batches} filtered={filtered} "
            f"fallback={fallback} hit_rate={rate:.1f}% bypassed={bypassed}"
        )

    def total(self, counter: str) -> int:
        """Whole-statement (root-inclusive) value of ``counter``."""
        return self.root.get(counter)

    @property
    def elapsed(self) -> float:
        """Whole-statement wall-clock seconds."""
        return self.root.elapsed

    def solver_savings(self) -> int:
        """Satisfiability answers produced without a full solve: requests
        minus the full decision-procedure runs actually paid for."""
        return self.total(SOLVER_REQUESTS) - self.total(SATISFIABILITY_CHECKS)

    def format(self) -> str:
        lines = [f"EXPLAIN ANALYZE {self.statement}"]
        lines.append(self.root.pretty(_EXPLAIN_COUNTERS, sparse=_EXPLAIN_SPARSE_COUNTERS))
        totals = [
            f"total: rows={len(self.result)}",
            f"accesses={self.total(LOGICAL_NODE_ACCESSES)}",
            f"physical={self.total(PHYSICAL_NODE_ACCESSES)}",
        ]
        if self.total(SOLVER_REQUESTS):
            totals.append(
                f"sat={self.total(SATISFIABILITY_CHECKS)}/{self.total(SOLVER_REQUESTS)}"
                f" (saved {self.solver_savings()})"
            )
        if self.result.truncated:
            totals.append("TRUNCATED")
        totals.append(f"time={self.elapsed * 1000:.3f}ms")
        lines.append("  ".join(totals))
        if self.budget_summary is not None:
            lines.append(self.budget_summary)
        if self.parallelism is not None:
            lines.append(self.parallelism)
        columnar_line = self.columnar_summary()
        if columnar_line is not None:
            lines.append(columnar_line)
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.format()


class QuerySession:
    """Executes multi-step ASCII queries against a database.

    ``indexes`` has the evaluator's index-catalog shape
    (relation name → {attribute set → index strategy}); with
    ``use_optimizer=True`` (the default) selections over indexed base
    relations become index scans.

    ``budget`` attaches a :class:`~repro.governor.Budget` governing every
    statement: each one runs in a fresh accounting window, so the session
    stays usable after a statement is cancelled.  With the budget in
    ``on_exhausted="partial"`` mode a statement that exhausts its budget
    binds (and returns) the tuples materialized so far, with the result's
    ``truncated`` flag set.

    ``analysis`` controls the static analyzer (:mod:`repro.analysis`):

    * ``"off"`` — never analyze (the default);
    * ``"warn"`` — analyze every statement before running it and record
      the findings in :attr:`last_diagnostics`, but execute regardless
      (results are identical to ``"off"``);
    * ``"strict"`` — additionally reject statements carrying error-level
      diagnostics: unsafe/ill-formed statements raise
      :class:`~repro.errors.StaticAnalysisError` before execution, and a
      statement whose provable output already exceeds the budget raises
      :class:`~repro.errors.OutputLimitExceeded` without materializing a
      single tuple (only when the budget is in ``"raise"`` mode —
      ``"partial"`` budgets truncate at run time instead).

    ``workers`` enables the morsel-driven parallel engine
    (:mod:`repro.exec`): statements evaluate with ``workers`` worker
    tasks refining scans and spatial operators in parallel, bit-identical
    to serial evaluation (see ``docs/PARALLELISM.md``).  ``workers=1``
    (the default) is exactly the serial code path — no engine or pool is
    ever constructed.  ``None`` reads ``$REPRO_WORKERS`` (default 1).
    Parallel sessions own a worker pool: call :meth:`close` (or use the
    session as a context manager) when done.

    ``exec_mode`` picks the execution flavour: ``"process"`` / ``"thread"``
    force a pool kind; ``"columnar"`` turns on the vectorized fast path
    (bit-identical results, see ``docs/COLUMNAR.md``) with pool flavour
    auto; ``"row"`` forces it off; ``"auto"`` is the default row path.
    ``None`` reads ``$REPRO_EXEC_MODE`` (default ``"auto"``).
    """

    _ANALYSIS_MODES = ("off", "warn", "strict")

    def __init__(
        self,
        database: Database,
        indexes: Mapping[str, Mapping[frozenset[str], object]] | None = None,
        use_optimizer: bool = True,
        registry: MetricsRegistry | None = None,
        budget: Budget | None = None,
        analysis: str = "off",
        workers: int | None = None,
        exec_mode: str | None = None,
    ) -> None:
        if analysis not in self._ANALYSIS_MODES:
            raise ValueError(
                f"analysis must be one of {self._ANALYSIS_MODES}, got {analysis!r}"
            )
        if workers is None:
            workers = default_workers()
        if exec_mode is None:
            exec_mode = default_exec_mode()
        pool_mode, columnar_on = split_exec_mode(exec_mode)
        self._exec_mode = exec_mode
        self._columnar = columnar_on
        self._workspace = Database({name: database[name] for name in database})
        self._indexes = {k: dict(v) for k, v in (indexes or {}).items()}
        self._use_optimizer = use_optimizer
        self._context = EvaluationContext(self._workspace, self._indexes, registry)
        self._results: dict[str, ConstraintRelation] = {}
        self._last: ConstraintRelation | None = None
        self._budget = budget
        self._analysis = analysis
        self._last_diagnostics: Diagnostics | None = None
        self._exec_config = ExecutionConfig(workers=workers, mode=pool_mode)
        self._engine: ExecutionEngine | None = None
        self._closed = False

    # -- lifecycle ----------------------------------------------------------

    @property
    def workers(self) -> int:
        """The session's worker count (1 = serial)."""
        return self._exec_config.workers

    @property
    def exec_mode(self) -> str:
        """The session's execution mode as given (``"columnar"`` means the
        vectorized fast path is active for every statement)."""
        return self._exec_mode

    @property
    def engine(self) -> ExecutionEngine | None:
        """The lazily created execution engine (``None`` while serial or
        before the first parallel statement)."""
        return self._engine

    def _active_engine(self) -> ExecutionEngine | None:
        if self._exec_config.workers < 2:
            return None
        if self._engine is None:
            # A closed parallel session must not silently leak a fresh
            # pool; _run already rejects statements after close(), this
            # guards direct callers.
            if self._closed:
                raise QueryError("QuerySession is closed")
            self._engine = ExecutionEngine(self._exec_config)
        return self._engine

    @property
    def closed(self) -> bool:
        """True once :meth:`close` has run; closed sessions reject new
        statements (the server closes tenant sessions on drain)."""
        return self._closed

    def close(self) -> None:
        """Shut down the worker pool, if one was ever created, and mark
        the session closed.  Idempotent: repeated calls — including via
        ``__exit__`` after an explicit close — are no-ops, and serial
        sessions have nothing to close but still flip ``closed``."""
        if self._closed:
            return
        self._closed = True
        if self._engine is not None:
            self._engine.close()
            self._engine = None

    def __enter__(self) -> "QuerySession":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- execution ----------------------------------------------------------

    def execute(self, text: str) -> ConstraintRelation:
        """Execute one statement line, bind and return its result."""
        return self._run(parse_statement(text))

    def run_script(self, script: str) -> ConstraintRelation:
        """Execute a whole script; returns the last statement's result."""
        result: ConstraintRelation | None = None
        for statement in parse_script(script):
            result = self._run(statement)
        assert result is not None  # parse_script rejects empty scripts
        return result

    def analyze(self, script: str) -> Diagnostics:
        """Statically analyze a statement or script against the current
        workspace bindings, without executing anything."""
        from ..analysis.analyzer import analyze_script

        diagnostics = analyze_script(script, self._workspace, self._budget)
        self._last_diagnostics = diagnostics
        return diagnostics

    def _analyze_statement(self, statement: Statement) -> Diagnostics:
        from ..analysis.analyzer import Analyzer, build_environment

        analyzer = Analyzer(build_environment(self._workspace), self._budget)
        return Diagnostics(analyzer.analyze_statement(statement))

    def _enforce(self, statement: Statement) -> None:
        """Run the analyzer per the session's ``analysis`` mode; in strict
        mode, raise before the statement executes."""
        diagnostics = self._analyze_statement(statement)
        self._last_diagnostics = diagnostics
        if self._analysis != "strict" or not diagnostics.has_errors:
            return
        blocking = [d for d in diagnostics.errors if d.code != "CQA402"]
        if blocking:
            raise StaticAnalysisError(
                "strict analysis rejected the statement:\n" + diagnostics.render(),
                diagnostics,
            )
        budget = self._budget
        if budget is not None and budget.on_exhausted == "raise":
            # CQA402: the statement provably cannot fit the budget, so it
            # fails fast with the same taxonomy a run-time overrun raises.
            overrun = next(d for d in diagnostics.errors if d.code == "CQA402")
            raise OutputLimitExceeded(
                f"rejected before execution: {overrun.message}",
                resource="output_tuples",
                limit=budget.limits.get("output_tuples"),
                snapshot=budget.snapshot(),
            )

    def _run(self, statement: Statement) -> ConstraintRelation:
        if self._closed:
            raise QueryError("QuerySession is closed")
        if self._analysis != "off":
            self._enforce(statement)
        schemas = self._schemas()
        plan = compile_statement(statement.body, schemas)
        plan = self.plan_for(plan)
        budget = self._budget
        engine = self._active_engine()
        with columnar_mode(self._columnar):
            if engine is not None:
                engine.begin_statement()
                with engine.activate():
                    result = self._evaluate_governed(plan, budget, statement.target)
            else:
                result = self._evaluate_governed(plan, budget, statement.target)
        self._workspace.add(statement.target, result, replace=True)
        self._results[statement.target] = result
        self._last = result
        return result

    def _evaluate_governed(
        self, plan: PlanNode, budget: Budget | None, target: str
    ) -> ConstraintRelation:
        if budget is None:
            return evaluate(plan, self._context).with_name(target)
        with budget.activate():
            result = evaluate(plan, self._context).with_name(target)
        if budget.truncated:
            result = result.with_truncated()
        return result

    def explain_analyze(self, text: str) -> ExplainAnalyzeReport:
        """Execute one statement and report its per-operator span tree.

        The statement *runs for real* (its result is bound for later
        steps, exactly like :meth:`execute`); the report carries the
        result plus per-operator rows, node accesses and timings."""
        statement = parse_statement(text)
        result = self._run(statement)
        root = self._context.registry.last_trace
        assert root is not None  # _run always opens a root span
        return ExplainAnalyzeReport(
            statement=text.strip(),
            target=statement.target,
            result=result,
            root=root,
            budget_summary=self._budget.summary() if self._budget is not None else None,
            parallelism=(
                self._engine.statement_summary() if self._engine is not None else None
            ),
        )

    def plan_for(self, plan: PlanNode) -> PlanNode:
        """The plan as it would actually run (after optimization)."""
        if self._use_optimizer:
            plan = Optimizer(self._workspace, self._indexes).optimize(plan)
        return plan

    def explain(self, text: str) -> str:
        """The optimized plan for one statement, without executing it."""
        statement = parse_statement(text)
        plan = compile_statement(statement.body, self._schemas())
        return self.plan_for(plan).pretty()

    # -- results ---------------------------------------------------------------

    def _schemas(self) -> dict[str, Schema]:
        return {name: self._workspace[name].schema for name in self._workspace}

    def __getitem__(self, name: str) -> ConstraintRelation:
        try:
            return self._workspace[name]
        except Exception:
            raise QueryError(f"no result or relation named {name!r}") from None

    def __contains__(self, name: object) -> bool:
        return name in self._workspace

    @property
    def last(self) -> ConstraintRelation:
        if self._last is None:
            raise QueryError("no statement has been executed yet")
        return self._last

    @property
    def results(self) -> Mapping[str, ConstraintRelation]:
        """All intermediate results bound so far, by target name."""
        return dict(self._results)

    @property
    def metrics(self) -> Metrics:
        """Evaluation metrics accumulated across the session."""
        return self._context.metrics

    @property
    def registry(self) -> MetricsRegistry:
        """The session's metrics registry (counters, timers, last trace)."""
        return self._context.registry

    @property
    def budget(self) -> Budget | None:
        """The attached resource budget, if any."""
        return self._budget

    @budget.setter
    def budget(self, budget: Budget | None) -> None:
        self._budget = budget

    @property
    def analysis(self) -> str:
        """The static-analysis mode: ``"off"``, ``"warn"`` or ``"strict"``."""
        return self._analysis

    @analysis.setter
    def analysis(self, mode: str) -> None:
        if mode not in self._ANALYSIS_MODES:
            raise ValueError(f"analysis must be one of {self._ANALYSIS_MODES}, got {mode!r}")
        self._analysis = mode

    @property
    def last_diagnostics(self) -> Diagnostics | None:
        """The most recent analyzer report (``None`` until the analyzer
        has run — via :meth:`analyze` or a non-``"off"`` analysis mode)."""
        return self._last_diagnostics
