"""Multi-step query sessions.

CQA/CDB queries "are broken up into multiple steps … the last step of the
query produces the query output" (section 3.3).  A :class:`QuerySession`
executes a script statement by statement against a database: each
statement compiles to a plan, (optionally) passes through the optimizer,
is evaluated, and its result is bound to the statement's target name for
later steps to reference.
"""

from __future__ import annotations

from typing import Mapping

from ..algebra.optimizer import Optimizer
from ..algebra.plan import EvaluationContext, Metrics, PlanNode, evaluate
from ..errors import QueryError
from ..model.database import Database
from ..model.relation import ConstraintRelation
from ..model.schema import Schema
from .ast import Statement
from .compiler import compile_statement
from .parser import parse_script, parse_statement


class QuerySession:
    """Executes multi-step ASCII queries against a database.

    ``indexes`` has the evaluator's index-catalog shape
    (relation name → {attribute set → index strategy}); with
    ``use_optimizer=True`` (the default) selections over indexed base
    relations become index scans.
    """

    def __init__(
        self,
        database: Database,
        indexes: Mapping[str, Mapping[frozenset[str], object]] | None = None,
        use_optimizer: bool = True,
    ):
        self._workspace = Database({name: database[name] for name in database})
        self._indexes = {k: dict(v) for k, v in (indexes or {}).items()}
        self._use_optimizer = use_optimizer
        self._context = EvaluationContext(self._workspace, self._indexes)
        self._results: dict[str, ConstraintRelation] = {}
        self._last: ConstraintRelation | None = None

    # -- execution ----------------------------------------------------------

    def execute(self, text: str) -> ConstraintRelation:
        """Execute one statement line, bind and return its result."""
        return self._run(parse_statement(text))

    def run_script(self, script: str) -> ConstraintRelation:
        """Execute a whole script; returns the last statement's result."""
        result: ConstraintRelation | None = None
        for statement in parse_script(script):
            result = self._run(statement)
        assert result is not None  # parse_script rejects empty scripts
        return result

    def _run(self, statement: Statement) -> ConstraintRelation:
        schemas = self._schemas()
        plan = compile_statement(statement.body, schemas)
        plan = self.plan_for(plan)
        result = evaluate(plan, self._context).with_name(statement.target)
        self._workspace.add(statement.target, result, replace=True)
        self._results[statement.target] = result
        self._last = result
        return result

    def plan_for(self, plan: PlanNode) -> PlanNode:
        """The plan as it would actually run (after optimization)."""
        if self._use_optimizer:
            plan = Optimizer(self._workspace, self._indexes).optimize(plan)
        return plan

    def explain(self, text: str) -> str:
        """The optimized plan for one statement, without executing it."""
        statement = parse_statement(text)
        plan = compile_statement(statement.body, self._schemas())
        return self.plan_for(plan).pretty()

    # -- results ---------------------------------------------------------------

    def _schemas(self) -> dict[str, Schema]:
        return {name: self._workspace[name].schema for name in self._workspace}

    def __getitem__(self, name: str) -> ConstraintRelation:
        try:
            return self._workspace[name]
        except Exception:
            raise QueryError(f"no result or relation named {name!r}") from None

    def __contains__(self, name: object) -> bool:
        return name in self._workspace

    @property
    def last(self) -> ConstraintRelation:
        if self._last is None:
            raise QueryError("no statement has been executed yet")
        return self._last

    @property
    def results(self) -> Mapping[str, ConstraintRelation]:
        """All intermediate results bound so far, by target name."""
        return dict(self._results)

    @property
    def metrics(self) -> Metrics:
        """Evaluation metrics accumulated across the session."""
        return self._context.metrics
