"""Typed diagnostics for the runtime invariant linter.

Mirrors :mod:`repro.analysis.diagnostics` (stable codes, severities, a
deterministic multi-line rendering used by the CLI and golden tests),
but findings point into *Python source files* of the repro tree rather
than query scripts: each carries a path, a line, and the enclosing
definition's qualified name.  The qualname — not the line number — is
what baseline fingerprints use, so accepted findings survive unrelated
edits to the file above them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping

from ..analysis.diagnostics import Severity

#: Catalog of every runtime diagnostic code.  Stable: codes are never
#: renumbered — retired rules leave a hole.  RT5xx codes are emitted by
#: the runtime sanitizer (:mod:`repro.devtools.sanitize`), never by the
#: AST linter; they are catalogued here so one table covers the whole
#: RT namespace.  See docs/DEVTOOLS.md.
RT_CODE_CATALOG: Mapping[str, tuple[Severity, str]] = {
    "RT101": (Severity.ERROR, "blocking call inside 'async def'"),
    "RT102": (Severity.ERROR, "thread-local stack push without try/finally pop"),
    "RT103": (Severity.ERROR, "guarded field mutated outside its declared lock"),
    "RT201": (Severity.ERROR, "cache-backed field mutated without invalidation"),
    "RT301": (Severity.WARNING, "governed loop without a budget checkpoint"),
    "RT401": (Severity.WARNING, "broad exception handler on a durability path"),
    "RT402": (Severity.ERROR, "handler swallows BaseException / SimulatedCrash"),
    "RT501": (Severity.ERROR, "lock-order cycle (runtime sanitizer)"),
    "RT502": (Severity.ERROR, "snapshot pin/unpin imbalance (runtime sanitizer)"),
}


def rt_default_severity(code: str) -> Severity:
    """The catalog severity for ``code`` (ERROR for unknown codes)."""
    return RT_CODE_CATALOG.get(code, (Severity.ERROR, ""))[0]


@dataclass(frozen=True)
class RuntimeDiagnostic:
    """One linter (or sanitizer) finding against the source tree."""

    code: str
    severity: Severity
    message: str
    #: Posix-style path as given to the linter (relative when the lint
    #: root was relative).
    path: str
    line: int
    #: Qualified name of the enclosing definition (``Class.method``),
    #: or ``"<module>"`` at module level.
    symbol: str
    hint: str | None = None

    @property
    def fingerprint(self) -> str:
        """The stable identity baselines match on: code, file, symbol —
        deliberately *not* the line number, which churns."""
        return f"{self.code}:{self.path}:{self.symbol}"

    def render(self) -> str:
        head = f"{self.code} {self.severity.label} {self.path}:{self.line}"
        lines = [f"{head} ({self.symbol}): {self.message}"]
        if self.hint is not None:
            lines.append(f"  = hint: {self.hint}")
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


def rt_diagnostic(
    code: str,
    message: str,
    *,
    path: str,
    line: int,
    symbol: str,
    hint: str | None = None,
    severity: Severity | None = None,
) -> RuntimeDiagnostic:
    """Build a :class:`RuntimeDiagnostic` with the catalog severity."""
    return RuntimeDiagnostic(
        code=code,
        severity=severity if severity is not None else rt_default_severity(code),
        message=message,
        path=path,
        line=line,
        symbol=symbol,
        hint=hint,
    )


class RuntimeReport:
    """An ordered collection of runtime diagnostics."""

    __slots__ = ("_items",)

    def __init__(self, items: Iterable[RuntimeDiagnostic] = ()) -> None:
        self._items: tuple[RuntimeDiagnostic, ...] = tuple(items)

    def __iter__(self) -> Iterator[RuntimeDiagnostic]:
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __bool__(self) -> bool:
        return bool(self._items)

    def by_code(self, code: str) -> "RuntimeReport":
        return RuntimeReport(d for d in self._items if d.code == code)

    @property
    def has_errors(self) -> bool:
        return any(d.severity >= Severity.ERROR for d in self._items)

    def without(self, fingerprints: Iterable[str]) -> "RuntimeReport":
        """A copy with every baselined finding removed."""
        accepted = set(fingerprints)
        return RuntimeReport(
            d for d in self._items if d.fingerprint not in accepted
        )

    def render(self) -> str:
        """Deterministic multi-line report; clean runs render as
        ``ok: no findings`` (the string the CI gate matches)."""
        if not self._items:
            return "ok: no findings"
        blocks = [d.render() for d in self._items]
        counts = {Severity.ERROR: 0, Severity.WARNING: 0, Severity.INFO: 0}
        for d in self._items:
            counts[d.severity] += 1
        summary = ", ".join(
            f"{n} {sev.label}{'s' if n != 1 else ''}"
            for sev, n in counts.items()
            if n
        )
        blocks.append(summary)
        return "\n".join(blocks)

    def __str__(self) -> str:
        return self.render()

    def __repr__(self) -> str:
        return f"RuntimeReport({list(self._items)!r})"
