"""Driver: walk files, run rules, apply suppressions and baselines.

:func:`lint_paths` is the single entry point both the CLI and the tests
use.  Ordering is fully deterministic (files sorted, findings sorted by
path/line/code), so the rendered report is directly comparable in
golden tests and CI logs.

Two escape hatches, both explicit in the diff they touch:

* an inline ``# devtools: allow[RTnnn]`` comment on the offending line
  waives one finding forever (for *reviewed* false positives — e.g. a
  freshly constructed node whose cache provably does not exist yet);
* a **baseline file** (JSON, written by ``repro devtools lint
  --write-baseline``) records accepted fingerprints
  (``code:path:symbol``) so a rule can be introduced before every
  legacy finding is fixed.  The shipped CI gate runs with an *empty*
  baseline — the tree itself lints clean.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Sequence

from ._astutil import ModuleContext
from .diagnostics import RuntimeDiagnostic, RuntimeReport
from .rules import all_rt_rules


@dataclass(frozen=True)
class Baseline:
    """Accepted finding fingerprints (``code:path:symbol``)."""

    fingerprints: frozenset[str] = frozenset()

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        """Load a baseline file; a missing file is an *empty* baseline,
        so a fresh checkout gates at full strictness."""
        if not path.exists():
            return cls()
        raw = json.loads(path.read_text(encoding="utf-8"))
        accepted = raw.get("accepted", []) if isinstance(raw, dict) else raw
        return cls(frozenset(str(fp) for fp in accepted))

    @classmethod
    def from_report(cls, report: RuntimeReport) -> "Baseline":
        return cls(frozenset(d.fingerprint for d in report))

    def write(self, path: Path) -> None:
        payload = {"accepted": sorted(self.fingerprints)}
        path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    def apply(self, report: RuntimeReport) -> RuntimeReport:
        return report.without(self.fingerprints)


def iter_python_files(paths: Iterable[Path]) -> list[Path]:
    """Every ``.py`` file under the given files/directories, sorted."""
    files: set[Path] = set()
    for path in paths:
        if path.is_dir():
            files.update(path.rglob("*.py"))
        else:
            files.add(path)
    return sorted(files)


def lint_file(path: Path, select: Sequence[str] | None = None) -> list[RuntimeDiagnostic]:
    """Run every (selected) rule over one file, suppressions applied."""
    ctx = ModuleContext.parse(path)
    out: list[RuntimeDiagnostic] = []
    for rule in all_rt_rules():
        if select is not None and rule.code not in select:
            continue
        for diag in rule.check(ctx):
            if not ctx.suppressed(diag.code, diag.line):
                out.append(diag)
    return out


def lint_paths(
    paths: Iterable[Path | str],
    *,
    select: Sequence[str] | None = None,
    baseline: Baseline | None = None,
) -> RuntimeReport:
    """Lint files/directories and return the (baseline-filtered) report."""
    diagnostics: list[RuntimeDiagnostic] = []
    for file_path in iter_python_files(Path(p) for p in paths):
        diagnostics.extend(lint_file(file_path, select=select))
    diagnostics.sort(key=lambda d: (d.path, d.line, d.code))
    report = RuntimeReport(diagnostics)
    if baseline is not None:
        report = baseline.apply(report)
    return report


__all__ = ["Baseline", "iter_python_files", "lint_file", "lint_paths"]
