"""The RT1xx–RT4xx AST rules.

Each rule is a function from a :class:`ModuleContext` to an iterator of
:class:`RuntimeDiagnostic`, registered with the :func:`rt_rule`
decorator — the same registry shape as :mod:`repro.analysis.rules`, so
adding a rule is: write the checker, decorate it, document the code in
``docs/DEVTOOLS.md``.

Two rules are driven by in-source annotation registries that the linter
reads *as AST literals* (the modules never import devtools):

* ``__lock_registry__ = {"ClassName": {"field": "lock_attr"}}`` — RT103
  flags any mutation of ``self.<field>`` in a method of ``ClassName``
  that is not lexically inside ``with self.<lock_attr>:``.
* ``__cache_registry__ = {"field": "invalidation_name"}`` — RT201 flags
  any mutation of ``<base>.<field>`` in a function with no paired
  ``<base>.<invalidation_name>(...)`` call (or assignment) in the same
  function.  ``__init__`` is exempt: construction precedes any cache.

Both are deliberately lexical.  A mutation through an alias
(``pages = self._pages; pages.append(x)``) is invisible — the registry
contract is therefore also a style contract: guarded fields are touched
through ``self``, which is how the codebase is written.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, Mapping, Sequence

from ._astutil import (
    ModuleContext,
    chain_matches,
    dotted_chain,
    functions,
    matches_any,
    module_literal,
    render_chain,
    walk_in_scope,
)
from .diagnostics import RuntimeDiagnostic, rt_diagnostic

CheckFn = Callable[[ModuleContext], Iterator[RuntimeDiagnostic]]


@dataclass(frozen=True)
class RTRule:
    code: str
    name: str
    check: CheckFn


_REGISTRY: list[RTRule] = []


def rt_rule(code: str, name: str) -> Callable[[CheckFn], CheckFn]:
    def register(fn: CheckFn) -> CheckFn:
        _REGISTRY.append(RTRule(code=code, name=name, check=fn))
        return fn

    return register


def all_rt_rules() -> tuple[RTRule, ...]:
    return tuple(_REGISTRY)


# --------------------------------------------------------------------------
# RT101: blocking calls on the event loop
# --------------------------------------------------------------------------

#: Call patterns that block the calling thread.  Inside an ``async def``
#: these stall every tenant sharing the loop; the fix is
#: ``loop.run_in_executor`` / ``asyncio.to_thread``.
BLOCKING_CALL_PATTERNS: tuple[str, ...] = (
    "time.sleep",
    "os.fsync",
    "os.replace",
    "open",
    "*.read_text",
    "*.write_text",
    "*.read_bytes",
    "*.write_bytes",
    "load_database",
    "*.load_database",
    "save_database",
    "*.save_database",
    "open_durable",
    "*.open_durable",
    "satisfiable",
    "full_solve",
    "*.session.close",
    "*._executor.shutdown",
)


@rt_rule("RT101", "blocking call in async def")
def check_blocking_in_async(ctx: ModuleContext) -> Iterator[RuntimeDiagnostic]:
    for fn in functions(ctx.tree):
        if not isinstance(fn, ast.AsyncFunctionDef):
            continue
        for node in walk_in_scope(fn):
            if not isinstance(node, ast.Call):
                continue
            chain = dotted_chain(node.func)
            pattern = matches_any(chain, BLOCKING_CALL_PATTERNS)
            if pattern is None:
                continue
            yield rt_diagnostic(
                "RT101",
                f"blocking call '{render_chain(chain)}(...)' runs on the "
                f"event loop inside 'async def {fn.name}'",
                path=ctx.path,
                line=node.lineno,
                symbol=ctx.qualname(fn),
                hint="move it off-loop: await loop.run_in_executor(None, ...) "
                "or asyncio.to_thread(...)",
            )


# --------------------------------------------------------------------------
# RT102: thread-local stack push without try/finally pop
# --------------------------------------------------------------------------

_STACK_FACTORY_NAMES = ("ThreadLocalStack", "_ActiveStack")
_PUSH_METHODS = ("push", "append")


def _thread_local_stack_names(tree: ast.Module) -> frozenset[str]:
    """Module-level names bound to a thread-local stack: any call to a
    known factory class, or to a class defined here deriving from
    ``threading.local``."""
    local_classes = set(_STACK_FACTORY_NAMES)
    for stmt in tree.body:
        if isinstance(stmt, ast.ClassDef):
            for base in stmt.bases:
                if dotted_chain(base)[-1] == "local":
                    local_classes.add(stmt.name)
    names: set[str] = set()
    for stmt in tree.body:
        if (
            isinstance(stmt, ast.Assign)
            and len(stmt.targets) == 1
            and isinstance(stmt.targets[0], ast.Name)
            and isinstance(stmt.value, ast.Call)
            and dotted_chain(stmt.value.func)[-1] in local_classes
        ):
            names.add(stmt.targets[0].id)
    return frozenset(names)


def _stack_push_base(
    stmt: ast.stmt, stack_names: frozenset[str]
) -> tuple[str, ...] | None:
    """The stack chain (everything before ``.push``/``.append``) when
    ``stmt`` is a bare push onto a tracked thread-local stack."""
    if not (isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call)):
        return None
    chain = dotted_chain(stmt.value.func)
    if len(chain) >= 2 and chain[-1] in _PUSH_METHODS and chain[0] in stack_names:
        return chain[:-1]
    return None


def _finally_pops(try_stmt: ast.Try) -> frozenset[tuple[str, ...]]:
    """Stack chains popped anywhere in the ``finally`` suite."""
    popped: set[tuple[str, ...]] = set()
    for stmt in try_stmt.finalbody:
        for node in [stmt, *walk_in_scope(stmt)]:
            if isinstance(node, ast.Call):
                chain = dotted_chain(node.func)
                if chain[-1] == "pop":
                    popped.add(chain[:-1])
    return frozenset(popped)


def _child_suites(stmt: ast.stmt) -> Iterator[list[ast.stmt]]:
    """The statement suites nested directly in a compound statement."""
    for attr in ("body", "orelse", "finalbody"):
        suite = getattr(stmt, attr, None)
        if isinstance(suite, list) and suite and isinstance(suite[0], ast.stmt):
            yield suite
    for handler in getattr(stmt, "handlers", []):
        yield handler.body
    for case in getattr(stmt, "cases", []):
        yield case.body


@rt_rule("RT102", "stack push without try/finally pop")
def check_unbalanced_stack_push(ctx: ModuleContext) -> Iterator[RuntimeDiagnostic]:
    stack_names = _thread_local_stack_names(ctx.tree)
    if not stack_names:
        return

    findings: list[RuntimeDiagnostic] = []

    def scan(suite: Sequence[ast.stmt], protected: frozenset[tuple[str, ...]]) -> None:
        for i, stmt in enumerate(suite):
            base = _stack_push_base(stmt, stack_names)
            if base is not None and base not in protected:
                nxt = suite[i + 1] if i + 1 < len(suite) else None
                guarded = isinstance(nxt, ast.Try) and base in _finally_pops(nxt)
                if not guarded:
                    findings.append(
                        rt_diagnostic(
                            "RT102",
                            f"push onto thread-local stack "
                            f"'{render_chain(base)}' with no matching pop in "
                            "a finally block",
                            path=ctx.path,
                            line=stmt.lineno,
                            symbol=ctx.qualname(stmt),
                            hint="follow the push with try/finally pop, or use "
                            "the .pushed(...) context manager",
                        )
                    )
            if isinstance(stmt, ast.Try):
                inner = protected | _finally_pops(stmt)
                scan(stmt.body, inner)
                for handler in stmt.handlers:
                    scan(handler.body, protected)
                scan(stmt.orelse, inner)
                scan(stmt.finalbody, protected)
            elif isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                scan(stmt.body, frozenset())
            else:
                for child in _child_suites(stmt):
                    scan(child, protected)

    scan(ctx.tree.body, frozenset())
    yield from findings


# --------------------------------------------------------------------------
# RT103: guarded field mutated outside its declared lock
# --------------------------------------------------------------------------

#: Method names that mutate their receiver in place.
_MUTATOR_METHODS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "remove",
        "pop",
        "popitem",
        "clear",
        "add",
        "discard",
        "update",
        "setdefault",
        "sort",
        "reverse",
        "appendleft",
        "popleft",
    }
)

_SIMPLE_STMTS = (ast.Assign, ast.AnnAssign, ast.AugAssign, ast.Expr, ast.Delete)


def _assign_targets(stmt: ast.stmt) -> Iterator[ast.expr]:
    if isinstance(stmt, ast.Assign):
        for target in stmt.targets:
            if isinstance(target, (ast.Tuple, ast.List)):
                yield from target.elts
            else:
                yield target
    elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
        yield stmt.target
    elif isinstance(stmt, ast.AugAssign):
        yield stmt.target
    elif isinstance(stmt, ast.Delete):
        yield from stmt.targets


def _field_mutations(stmt: ast.stmt) -> Iterator[tuple[tuple[str, ...], int]]:
    """``(access chain, line)`` for each attribute-rooted mutation
    performed by a *simple* statement: assignments/deletions targeting an
    attribute or subscript, and in-place mutator calls."""
    if not isinstance(stmt, _SIMPLE_STMTS):
        return
    for target in _assign_targets(stmt):
        if isinstance(target, (ast.Attribute, ast.Subscript)):
            yield dotted_chain(target), stmt.lineno
    if (
        isinstance(stmt, ast.Expr)
        and isinstance(stmt.value, ast.Call)
        and isinstance(stmt.value.func, ast.Attribute)
        and stmt.value.func.attr in _MUTATOR_METHODS
    ):
        yield dotted_chain(stmt.value.func), stmt.lineno


def _lock_registry(ctx: ModuleContext) -> Mapping[str, Mapping[str, str]]:
    raw = module_literal(ctx.tree, "__lock_registry__")
    if isinstance(raw, dict):
        return {
            str(cls): {str(f): str(lk) for f, lk in spec.items()}
            for cls, spec in raw.items()
            if isinstance(spec, dict)
        }
    return {}


@rt_rule("RT103", "mutation outside declared lock")
def check_lock_discipline(ctx: ModuleContext) -> Iterator[RuntimeDiagnostic]:
    registry = _lock_registry(ctx)
    if not registry:
        return

    findings: list[RuntimeDiagnostic] = []

    def scan(
        suite: Sequence[ast.stmt],
        held: frozenset[str],
        fields: Mapping[str, str],
        cls_name: str,
    ) -> None:
        for stmt in suite:
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                acquired = set()
                for item in stmt.items:
                    chain = dotted_chain(item.context_expr)
                    if len(chain) == 2 and chain[0] == "self":
                        acquired.add(chain[1])
                scan(stmt.body, held | frozenset(acquired), fields, cls_name)
                continue
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                continue
            for chain, line in _field_mutations(stmt):
                if len(chain) >= 2 and chain[0] == "self" and chain[1] in fields:
                    lock = fields[chain[1]]
                    if lock not in held:
                        findings.append(
                            rt_diagnostic(
                                "RT103",
                                f"'{render_chain(chain)}' mutates "
                                f"{cls_name}.{chain[1]}, declared guarded by "
                                f"'self.{lock}', outside 'with self.{lock}:'",
                                path=ctx.path,
                                line=line,
                                symbol=ctx.qualname(stmt),
                                hint="wrap the mutation in the declared lock "
                                "(see __lock_registry__)",
                            )
                        )
            for child in _child_suites(stmt):
                scan(child, held, fields, cls_name)

    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.ClassDef):
            continue
        fields = registry.get(node.name)
        if not fields:
            continue
        for member in node.body:
            if (
                isinstance(member, (ast.FunctionDef, ast.AsyncFunctionDef))
                and member.name != "__init__"
            ):
                scan(member.body, frozenset(), fields, node.name)

    yield from findings


# --------------------------------------------------------------------------
# RT201: cache-backed field mutated without invalidation
# --------------------------------------------------------------------------


def _cache_registry(ctx: ModuleContext) -> Mapping[str, str]:
    raw = module_literal(ctx.tree, "__cache_registry__")
    if isinstance(raw, dict):
        return {str(field): str(inval) for field, inval in raw.items()}
    return {}


@rt_rule("RT201", "cache mutation without invalidation")
def check_cache_invalidation(ctx: ModuleContext) -> Iterator[RuntimeDiagnostic]:
    registry = _cache_registry(ctx)
    if not registry:
        return

    for fn in functions(ctx.tree):
        if fn.name == "__init__":
            continue
        mutations: list[tuple[tuple[str, ...], str, int]] = []
        call_chains: set[tuple[str, ...]] = set()
        assign_chains: set[tuple[str, ...]] = set()
        for node in walk_in_scope(fn):
            if isinstance(node, ast.Call):
                call_chains.add(dotted_chain(node.func))
            if isinstance(node, ast.stmt):
                for target in _assign_targets(node):
                    assign_chains.add(dotted_chain(target))
                for chain, line in _field_mutations(node):
                    for idx in range(1, len(chain)):
                        if chain[idx] in registry:
                            mutations.append((chain[:idx], chain[idx], line))
                            break
        for base, field, line in mutations:
            inval = registry[field]
            paired = base + (inval,)
            if paired in call_chains or paired in assign_chains:
                continue
            yield rt_diagnostic(
                "RT201",
                f"'{render_chain(base)}.{field}' is cache-backed but this "
                f"mutation has no paired '{render_chain(base)}.{inval}(...)' "
                "in the same function",
                path=ctx.path,
                line=line,
                symbol=ctx.qualname(fn),
                hint=f"invalidate via {inval} after mutating, or waive a "
                "provably-fresh object with '# devtools: allow[RT201]'",
            )


# --------------------------------------------------------------------------
# RT301: governed loop without a budget checkpoint
# --------------------------------------------------------------------------

#: Calls that do real IO/solver work; a loop that performs them should
#: give the governor a chance to cancel or charge per iteration.
WORK_CALL_PATTERNS: tuple[str, ...] = (
    "*.read_page",
    "*.write_page",
    "os.fsync",
    "*.fsync",
    "satisfiable",
    "*.satisfiable",
    "full_solve",
    "*.full_solve",
)

#: Cooperation markers: budget charge/checkpoint entry points and the
#: ProducerGuard wrapper.  A ``yield`` also counts — a generator loop
#: hands control back to a consumer that charges.
HOOK_CALL_PATTERNS: tuple[str, ...] = (
    "checkpoint",
    "*.checkpoint",
    "charge",
    "*.charge",
    "charge_io",
    "*.charge_io",
    "charge_rows",
    "*.charge_rows",
    "start_row",
    "*.start_row",
    "produced",
    "*.produced",
    "ProducerGuard",
    "*.ProducerGuard",
)


@rt_rule("RT301", "governed loop without checkpoint")
def check_governed_loops(ctx: ModuleContext) -> Iterator[RuntimeDiagnostic]:
    for fn in functions(ctx.tree):
        for node in walk_in_scope(fn):
            if not isinstance(node, (ast.For, ast.AsyncFor, ast.While)):
                continue
            work: ast.Call | None = None
            has_hook = False
            has_yield = False
            for sub in walk_in_scope(node):
                if isinstance(sub, (ast.Yield, ast.YieldFrom, ast.Await)):
                    has_yield = True
                elif isinstance(sub, ast.Call):
                    chain = dotted_chain(sub.func)
                    if matches_any(chain, HOOK_CALL_PATTERNS):
                        has_hook = True
                    elif work is None and matches_any(chain, WORK_CALL_PATTERNS):
                        work = sub
            if work is not None and not has_hook and not has_yield:
                chain = dotted_chain(work.func)
                yield rt_diagnostic(
                    "RT301",
                    f"loop performs '{render_chain(chain)}(...)' with no "
                    "governor checkpoint/charge on the path — cancellation "
                    "and budgets cannot interrupt it",
                    path=ctx.path,
                    line=node.lineno,
                    symbol=ctx.qualname(fn),
                    hint="call checkpoint()/charge_io() per iteration or wrap "
                    "the producer in ProducerGuard",
                )


# --------------------------------------------------------------------------
# RT401 / RT402: exception hygiene
# --------------------------------------------------------------------------

#: Modules where *any* broad handler is suspect: silent absorption here
#: turns torn writes into quiet corruption.
_CRITICAL_MODULES = frozenset({"repro.storage.wal", "repro.storage.snapshot"})

#: Qualname fragments marking recovery/redo paths in any module.
_CRITICAL_MARKERS = ("recover", "reload", "replay", "redo", "crash")


def _handler_type_chains(handler: ast.ExceptHandler) -> list[tuple[str, ...]]:
    if handler.type is None:
        return []
    if isinstance(handler.type, ast.Tuple):
        return [dotted_chain(elt) for elt in handler.type.elts]
    return [dotted_chain(handler.type)]


def _reraises(handler: ast.ExceptHandler) -> bool:
    return any(
        isinstance(node, ast.Raise)
        for node in walk_in_scope(handler)
    )


@rt_rule("RT401", "broad except on durability path")
def check_broad_except(ctx: ModuleContext) -> Iterator[RuntimeDiagnostic]:
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.ExceptHandler):
            continue
        chains = _handler_type_chains(node)
        if node.type is not None and not any(
            chain[-1] == "Exception" for chain in chains
        ):
            continue
        if node.type is None:
            # Bare except is RT402's (stricter) business.
            continue
        qual = ctx.qualname(node).lower()
        critical = ctx.module_name in _CRITICAL_MODULES or any(
            marker in qual for marker in _CRITICAL_MARKERS
        )
        if not critical or _reraises(node):
            continue
        yield rt_diagnostic(
            "RT401",
            "broad 'except Exception' on a durability/recovery path "
            "swallows failures that should abort the operation",
            path=ctx.path,
            line=node.lineno,
            symbol=ctx.qualname(node),
            hint="catch the specific ReproError/OSError subset, or re-raise "
            "after logging",
        )


@rt_rule("RT402", "handler swallows BaseException")
def check_swallowed_base_exception(ctx: ModuleContext) -> Iterator[RuntimeDiagnostic]:
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.ExceptHandler):
            continue
        chains = _handler_type_chains(node)
        broad = node.type is None or any(
            chain[-1] == "BaseException" for chain in chains
        )
        if not broad or _reraises(node):
            continue
        yield rt_diagnostic(
            "RT402",
            "handler catches BaseException (or everything) without "
            "re-raising — it would absorb SimulatedCrash and "
            "KeyboardInterrupt",
            path=ctx.path,
            line=node.lineno,
            symbol=ctx.qualname(node),
            hint="re-raise in the handler, or narrow the caught type to "
            "Exception subclasses",
        )


__all__ = [
    "RTRule",
    "rt_rule",
    "all_rt_rules",
    "BLOCKING_CALL_PATTERNS",
    "WORK_CALL_PATTERNS",
    "HOOK_CALL_PATTERNS",
    "chain_matches",
]
