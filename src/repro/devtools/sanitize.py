"""The RT5xx runtime sanitizer: lock-order and snapshot-pin checking.

The AST rules in :mod:`repro.devtools.rules` catch invariant violations
that are visible in the source; two invariants are fundamentally
*dynamic* and get a runtime checker instead, enabled in test runs via
``REPRO_SANITIZE=1`` (see :func:`install_from_env`):

* **RT501 — lock-order cycles.**  Every lock created through
  :func:`repro._concurrency.new_lock` / ``new_async_lock`` reports its
  acquisitions to a process-wide :class:`LockOrderTracker`.  Locks are
  grouped by *role name* (the string passed at creation); whenever lock
  B is acquired while lock A is held in the same execution context, the
  edge ``A → B`` joins a global order graph.  An edge that closes a
  cycle — including the two-thread ``A→B`` / ``B→A`` inversion that
  only deadlocks under unlucky scheduling — raises
  :class:`LockOrderError` *at acquisition time*, deterministically,
  instead of hanging the suite once in a hundred runs.  Re-acquiring
  the same (non-reentrant) lock instance in one context is reported as
  the guaranteed deadlock it is.
* **RT502 — snapshot pin/unpin imbalance.**
  :class:`~repro.storage.snapshot.DatabaseSnapshot` reports every
  ``pin()``/``unpin()`` through :func:`note_pin`/:func:`note_unpin`.
  A *retired* snapshot whose pin count never returns to zero is a
  leaked reader — the hot-reload bug class where an old catalog (and
  every page/columnar cache hanging off it) can never be collected.
  :meth:`Sanitizer.assert_clean` raises :class:`PinLeakError` for any
  such snapshot (the per-test teardown hook in ``tests/conftest.py``
  calls it when the sanitizer is installed).

Execution contexts combine the thread id with the current asyncio task
(when any), so the tracker is exact both for executor threads and for
interleaved tasks sharing the server's event loop.

This module deliberately imports nothing from the rest of the library,
so the lowest layers (storage, concurrency primitives) can call into it
without cycles; when no sanitizer is installed every hook is one global
read and a ``None`` test.
"""

from __future__ import annotations

import asyncio
import os
import threading
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..storage.snapshot import DatabaseSnapshot

#: Environment variable that turns the sanitizer on for a test run.
SANITIZE_ENV_VAR = "REPRO_SANITIZE"


class SanitizerError(AssertionError):
    """Base class for sanitizer findings.

    An :class:`AssertionError` subclass on purpose: a finding is a bug
    in the runtime, not an expected client-visible outcome, so it must
    never be absorbed by the server's :class:`~repro.errors.ReproError`
    taxonomy handling.
    """


class LockOrderError(SanitizerError):
    """RT501: a lock acquisition that closes an ordering cycle."""


class PinLeakError(SanitizerError):
    """RT502: a retired snapshot still pinned at a balance check."""


def _context_key() -> tuple[int, int]:
    """The execution context acquisitions are grouped under: the thread,
    refined by the running asyncio task when there is one (two tasks
    interleaving on one loop thread are distinct lock-holding contexts).
    """
    task: object | None = None
    try:
        task = asyncio.current_task()
    except RuntimeError:
        task = None
    return (threading.get_ident(), id(task) if task is not None else 0)


class LockOrderTracker:
    """A process-wide acquisition-order graph with cycle detection."""

    def __init__(self) -> None:
        # A *plain* lock guards the tracker's own state — it must never
        # itself be tracked.
        self._mutex = threading.Lock()
        #: role name -> role names acquired while it was held.
        self._edges: dict[str, set[str]] = {}
        #: context key -> stack of (role name, lock id) currently held.
        self._held: dict[tuple[int, int], list[tuple[str, int]]] = {}
        #: violation messages recorded so far (also raised at detection;
        #: kept so :meth:`Sanitizer.assert_clean` can re-surface a
        #: violation that some broad handler swallowed mid-test).
        self.violations: list[str] = []

    def note_acquire(self, name: str, lock_id: int) -> None:
        """Record intent to acquire; raises on a detected inversion
        *before* the caller blocks on the underlying lock."""
        key = _context_key()
        with self._mutex:
            held = self._held.setdefault(key, [])
            for held_name, held_id in held:
                if held_id == lock_id:
                    message = (
                        f"RT501: recursive acquisition of non-reentrant lock "
                        f"'{name}' (already held in this context; guaranteed "
                        "deadlock)"
                    )
                    self.violations.append(message)
                    raise LockOrderError(message)
            for held_name, _ in held:
                self._note_edge(held_name, name)
            held.append((name, lock_id))

    def note_release(self, name: str, lock_id: int) -> None:
        del name
        key = _context_key()
        with self._mutex:
            held = self._held.get(key)
            if not held:
                return
            for i in range(len(held) - 1, -1, -1):
                if held[i][1] == lock_id:
                    del held[i]
                    break
            if not held:
                self._held.pop(key, None)

    def _note_edge(self, first: str, second: str) -> None:
        """Record ``first → second`` (caller holds ``_mutex``); raises
        when the new edge closes a cycle.  The offending edge is *not*
        kept, so the same inversion keeps raising if retried."""
        if first == second:
            # Same *role*, different instances (same-instance re-entry was
            # already caught above): the graph orders roles, and a role
            # nested under itself (two snapshots' pin locks) is ordinary.
            return
        targets = self._edges.setdefault(first, set())
        if second in targets:
            return
        cycle = self._path(second, first)
        if cycle is not None:
            rendered = " -> ".join([first] + cycle)
            message = (
                f"RT501: lock-order cycle: acquiring '{second}' while holding "
                f"'{first}' inverts the established order {rendered}"
            )
            self.violations.append(message)
            raise LockOrderError(message)
        targets.add(second)

    def _path(self, start: str, goal: str) -> list[str] | None:
        """A path ``start → … → goal`` in the order graph, or ``None``."""
        stack: list[tuple[str, list[str]]] = [(start, [start])]
        seen: set[str] = set()
        while stack:
            node, path = stack.pop()
            if node == goal:
                return path
            if node in seen:
                continue
            seen.add(node)
            for nxt in self._edges.get(node, ()):
                stack.append((nxt, path + [nxt]))
        return None

    def held_now(self) -> list[str]:
        """Role names held in the current context (diagnostics/tests)."""
        with self._mutex:
            return [name for name, _ in self._held.get(_context_key(), [])]


class TrackedLock:
    """A ``threading.Lock`` stand-in that reports to a tracker.

    Same surface the library uses: ``acquire``/``release``, context
    manager, ``locked()``.  Not reentrant, exactly like the lock it
    wraps.
    """

    __slots__ = ("_name", "_lock", "_tracker")

    def __init__(self, tracker: LockOrderTracker, name: str) -> None:
        self._tracker = tracker
        self._name = name
        self._lock = threading.Lock()

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        self._tracker.note_acquire(self._name, id(self))
        acquired = self._lock.acquire(blocking, timeout)
        if not acquired:
            self._tracker.note_release(self._name, id(self))
        return acquired

    def release(self) -> None:
        self._lock.release()
        self._tracker.note_release(self._name, id(self))

    def locked(self) -> bool:
        return self._lock.locked()

    def __enter__(self) -> "TrackedLock":
        self.acquire()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.release()

    def __repr__(self) -> str:
        return f"<TrackedLock {self._name!r} locked={self.locked()}>"


class TrackedAsyncLock(asyncio.Lock):
    """An ``asyncio.Lock`` subclass that reports to a tracker (``async
    with`` goes through :meth:`acquire`/:meth:`release`, so the
    inherited context-manager protocol is covered)."""

    def __init__(self, tracker: LockOrderTracker, name: str) -> None:
        super().__init__()
        self._rt_tracker = tracker
        self._rt_name = name

    async def acquire(self) -> bool:
        self._rt_tracker.note_acquire(self._rt_name, id(self))
        try:
            return await super().acquire()
        except BaseException:
            self._rt_tracker.note_release(self._rt_name, id(self))
            raise

    def release(self) -> None:
        super().release()
        self._rt_tracker.note_release(self._rt_name, id(self))


class PinTracker:
    """Balance accounting for snapshot ``pin()``/``unpin()`` pairs."""

    def __init__(self) -> None:
        self._mutex = threading.Lock()
        #: id(snapshot) -> [snapshot, net pin count].  Strong references
        #: are fine here: the tracker only exists in sanitizer test runs.
        self._pins: dict[int, list[Any]] = {}

    def note_pin(self, snapshot: "DatabaseSnapshot") -> None:
        with self._mutex:
            entry = self._pins.setdefault(id(snapshot), [snapshot, 0])
            entry[1] += 1

    def note_unpin(self, snapshot: "DatabaseSnapshot") -> None:
        with self._mutex:
            entry = self._pins.get(id(snapshot))
            if entry is None:
                return
            entry[1] -= 1
            if entry[1] <= 0:
                self._pins.pop(id(snapshot), None)

    def leaks(self) -> list[tuple[Any, int]]:
        """``(snapshot, net pins)`` for every *retired* snapshot still
        pinned — a reader that will never release its catalog."""
        with self._mutex:
            return [
                (snapshot, net)
                for snapshot, net in self._pins.values()
                if net > 0 and getattr(snapshot, "retired", False)
            ]

    def pending(self) -> int:
        """Total outstanding pins (live snapshots included)."""
        with self._mutex:
            return sum(net for _, net in self._pins.values())

    def forget(self, snapshot: object) -> None:
        with self._mutex:
            self._pins.pop(id(snapshot), None)


class Sanitizer:
    """The installed RT5xx checker pair."""

    def __init__(self) -> None:
        self.locks = LockOrderTracker()
        self.pins = PinTracker()

    def tracked_lock(self, name: str) -> TrackedLock:
        return TrackedLock(self.locks, name)

    def tracked_async_lock(self, name: str) -> TrackedAsyncLock:
        return TrackedAsyncLock(self.locks, name)

    def assert_clean(self) -> None:
        """Raise for any violation outstanding at a checkpoint (end of a
        test).  Reported state is consumed, so one leak does not poison
        every later check."""
        violations = list(self.locks.violations)
        self.locks.violations.clear()
        leaks = self.pins.leaks()
        for snapshot, _ in leaks:
            self.pins.forget(snapshot)
        if leaks:
            detail = ", ".join(
                f"v{getattr(snap, 'version', '?')} ({net} pin(s))"
                for snap, net in leaks
            )
            raise PinLeakError(
                f"RT502: retired snapshot(s) still pinned: {detail} — every "
                "pin() needs a matching unpin() on all paths"
            )
        if violations:
            raise LockOrderError(
                "RT501: lock-order violation(s) recorded during the test: "
                + "; ".join(violations)
            )


_ACTIVE: Sanitizer | None = None


def active_sanitizer() -> Sanitizer | None:
    """The installed sanitizer, or ``None`` (the common, zero-cost case)."""
    return _ACTIVE


def install() -> Sanitizer:
    """Install (idempotently) and return the process sanitizer."""
    global _ACTIVE
    if _ACTIVE is None:
        _ACTIVE = Sanitizer()
    return _ACTIVE


def uninstall() -> None:
    """Remove the sanitizer (tracked locks already handed out keep
    working; they just keep reporting to the detached tracker)."""
    global _ACTIVE
    _ACTIVE = None


def install_from_env() -> Sanitizer | None:
    """Install when ``REPRO_SANITIZE=1`` is set (test harness hook)."""
    if os.environ.get(SANITIZE_ENV_VAR, "") == "1":
        return install()
    return None


def note_pin(snapshot: "DatabaseSnapshot") -> None:
    """Pin hook for :class:`~repro.storage.snapshot.DatabaseSnapshot`."""
    sanitizer = _ACTIVE
    if sanitizer is not None:
        sanitizer.pins.note_pin(snapshot)


def note_unpin(snapshot: "DatabaseSnapshot") -> None:
    """Unpin hook, mirror of :func:`note_pin`."""
    sanitizer = _ACTIVE
    if sanitizer is not None:
        sanitizer.pins.note_unpin(snapshot)


__all__ = [
    "SANITIZE_ENV_VAR",
    "SanitizerError",
    "LockOrderError",
    "PinLeakError",
    "LockOrderTracker",
    "TrackedLock",
    "TrackedAsyncLock",
    "PinTracker",
    "Sanitizer",
    "active_sanitizer",
    "install",
    "uninstall",
    "install_from_env",
    "note_pin",
    "note_unpin",
]
