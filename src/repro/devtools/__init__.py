"""Static analysis *of the repro runtime itself* (``repro devtools``).

:mod:`repro.analysis` (PR 4) checks user queries before evaluating them;
this package applies the same move to the implementation: an ``ast``-
driven linter over the repro source tree emitting typed ``RTnnn``
diagnostics for the invariants the runtime otherwise enforces only by
convention — event-loop hygiene in the async server, thread-local stack
push/pop balance, lock discipline on shared fields, cache-invalidation
pairing on the write path, cooperative-cancellation coverage, and
exception hygiene on the durability paths.  ``RT5xx`` is the companion
*runtime* sanitizer (:mod:`repro.devtools.sanitize`): a lock-order
deadlock detector and a snapshot pin/unpin balance checker enabled under
``REPRO_SANITIZE=1``.

Surfaces: ``repro devtools lint`` (CLI, exit 2 on errors, ``--baseline``
for accepted findings) and :func:`lint_paths` (library).  See
``docs/DEVTOOLS.md`` for the full catalog.
"""

from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .diagnostics import (
        RT_CODE_CATALOG,
        RuntimeDiagnostic,
        RuntimeReport,
        Severity,
        rt_diagnostic,
    )
    from .linter import Baseline, lint_paths
    from .rules import all_rt_rules

__all__ = [
    "RT_CODE_CATALOG",
    "RuntimeDiagnostic",
    "RuntimeReport",
    "Severity",
    "rt_diagnostic",
    "Baseline",
    "lint_paths",
    "all_rt_rules",
]

#: Lazy re-exports (PEP 562).  The storage layer imports
#: :mod:`repro.devtools.sanitize` on every process start; keeping the
#: package ``__init__`` free of eager imports means that costs nothing —
#: the ``ast`` machinery (and its ``repro.analysis`` dependency) loads
#: only when the linter itself is used.
_EXPORTS = {
    "RT_CODE_CATALOG": "diagnostics",
    "RuntimeDiagnostic": "diagnostics",
    "RuntimeReport": "diagnostics",
    "Severity": "diagnostics",
    "rt_diagnostic": "diagnostics",
    "Baseline": "linter",
    "lint_paths": "linter",
    "all_rt_rules": "rules",
}


def __getattr__(name: str) -> Any:
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    module = importlib.import_module(f".{module_name}", __name__)
    return getattr(module, name)


def __dir__() -> list[str]:
    return sorted(__all__)
