"""AST plumbing shared by the RT rules.

The rules operate on a :class:`ModuleContext`: one parsed source file
with a precomputed ``node -> qualified name`` map (so findings carry
``Class.method`` symbols, which is what baseline fingerprints key on),
the raw source lines (for ``# devtools: allow[RTnnn]`` suppression
comments), and the module's dotted import name when the file lives
under a recognisable package root.

The central primitive is :func:`dotted_chain`: a best-effort rendering
of an attribute access like ``self._pages[idx].append`` into the tuple
``("self", "_pages", "[]", "append")``.  Chains are matched against
patterns such as ``"time.sleep"`` or ``"*.read_text"`` (leading ``*``
matches any non-empty base) — purely lexical, which is the right
trade-off for an in-repo linter: the conventions it enforces are naming
conventions the codebase already follows.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, Sequence


def dotted_chain(node: ast.AST) -> tuple[str, ...]:
    """The lexical access path of an expression, innermost first.

    ``a.b.c`` -> ``("a", "b", "c")``; subscripts contribute ``"[]"`` and
    call results ``"()"``; anything opaque contributes ``"?"``.
    """
    if isinstance(node, ast.Name):
        return (node.id,)
    if isinstance(node, ast.Attribute):
        return dotted_chain(node.value) + (node.attr,)
    if isinstance(node, ast.Subscript):
        return dotted_chain(node.value) + ("[]",)
    if isinstance(node, ast.Call):
        return dotted_chain(node.func) + ("()",)
    return ("?",)


def render_chain(chain: Sequence[str]) -> str:
    out = ""
    for part in chain:
        if part in ("[]", "()"):
            out += part
        elif out:
            out += "." + part
        else:
            out = part
    return out


def chain_matches(chain: Sequence[str], pattern: str) -> bool:
    """Match a chain against a dotted pattern.

    A pattern without ``*`` must equal the chain exactly (``"open"``
    matches only the builtin call, not ``path.open``).  A leading
    ``*.`` matches any non-empty base: ``"*.read_text"`` matches
    ``cfg_path.read_text`` and ``self._path.read_text`` but not a bare
    ``read_text``.
    """
    parts = tuple(pattern.split("."))
    if parts[0] == "*":
        tail = parts[1:]
        return len(chain) > len(tail) and tuple(chain[-len(tail):]) == tail
    return tuple(chain) == parts


def matches_any(chain: Sequence[str], patterns: Sequence[str]) -> str | None:
    """The first pattern in ``patterns`` that matches, or ``None``."""
    for pattern in patterns:
        if chain_matches(chain, pattern):
            return pattern
    return None


_SCOPE_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)


def walk_in_scope(node: ast.AST) -> Iterator[ast.AST]:
    """Every descendant of ``node`` *without* descending into nested
    function definitions or lambdas (their bodies run in a different
    dynamic context, so e.g. a blocking call inside a nested sync helper
    defined in an ``async def`` is not a blocking call *on the loop*)."""
    for child in ast.iter_child_nodes(node):
        yield child
        if isinstance(child, _SCOPE_NODES):
            continue
        yield from walk_in_scope(child)


def functions(tree: ast.Module) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef]:
    """All function definitions in the module, at any nesting depth."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def module_literal(tree: ast.Module, name: str) -> object | None:
    """The value of a module-level ``name = <literal>`` assignment
    (evaluated with :func:`ast.literal_eval`), or ``None``."""
    for stmt in tree.body:
        if (
            isinstance(stmt, ast.Assign)
            and len(stmt.targets) == 1
            and isinstance(stmt.targets[0], ast.Name)
            and stmt.targets[0].id == name
        ):
            try:
                return ast.literal_eval(stmt.value)
            except ValueError:
                return None
        if (
            isinstance(stmt, ast.AnnAssign)
            and isinstance(stmt.target, ast.Name)
            and stmt.target.id == name
            and stmt.value is not None
        ):
            try:
                return ast.literal_eval(stmt.value)
            except ValueError:
                return None
    return None


def _module_name_for(path: Path) -> str:
    """Best-effort dotted module name: everything from the last ``repro``
    path component down; the bare stem for files outside the package
    (e.g. test fixtures in a temp dir)."""
    parts = list(path.with_suffix("").parts)
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    for i in range(len(parts) - 1, -1, -1):
        if parts[i] == "repro":
            return ".".join(parts[i:])
    return parts[-1] if parts else str(path)


@dataclass
class ModuleContext:
    """One parsed file plus the derived maps the rules need."""

    path: str
    module_name: str
    source: str
    tree: ast.Module
    lines: tuple[str, ...]
    _qualnames: dict[int, str] = field(default_factory=dict, repr=False)

    @classmethod
    def parse(cls, file_path: Path, display_path: str | None = None) -> "ModuleContext":
        source = file_path.read_text(encoding="utf-8")
        tree = ast.parse(source, filename=str(file_path))
        ctx = cls(
            path=display_path if display_path is not None else file_path.as_posix(),
            module_name=_module_name_for(file_path),
            source=source,
            tree=tree,
            lines=tuple(source.splitlines()),
        )
        ctx._index_qualnames(tree, prefix="")
        return ctx

    def _index_qualnames(self, node: ast.AST, prefix: str) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                qual = f"{prefix}.{child.name}" if prefix else child.name
                self._mark_scope(child, qual)
                self._index_qualnames(child, qual)
            else:
                self._index_qualnames(child, prefix)

    def _mark_scope(self, node: ast.AST, qual: str) -> None:
        """Label ``node`` and its body with ``qual``, stopping at nested
        definitions (they get their own, deeper qualname)."""
        self._qualnames[id(node)] = qual
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue
            self._mark_scope(child, qual)

    def qualname(self, node: ast.AST) -> str:
        """The qualified name of the definition enclosing ``node`` (the
        definition's own name for def/class nodes), or ``<module>``."""
        return self._qualnames.get(id(node), "<module>")

    def suppressed(self, code: str, line: int) -> bool:
        """True when the physical line carries an inline waiver comment
        ``# devtools: allow[RTnnn]``."""
        if 1 <= line <= len(self.lines):
            return f"devtools: allow[{code}]" in self.lines[line - 1]
        return False
