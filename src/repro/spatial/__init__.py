"""Spatial layer: geometry, features, whole-feature operators, vector model.

Public surface:

* :class:`Point`, :class:`Segment`, :class:`BoundingBox` — exact 2-D
  primitives.
* :class:`ConvexPolygon` — constraint ⇄ vertex conversion, intersection,
  distance.
* :class:`Feature`, :class:`FeatureSet` — whole features and spatial
  constraint relations (section 4.2).
* :func:`buffer_join`, :func:`k_nearest` (+ plan nodes) — the safe
  whole-feature operators of section 4.
* :class:`PolylineFeature`, :class:`RegionFeature`,
  :class:`RepresentationCost`, :func:`digitize` — the vector model of
  section 6.
"""

from .buffer_join import BufferJoinStatistics, buffer_join, buffer_join_bruteforce
from .export import (
    feature_set_to_geojson,
    feature_to_geojson,
    polygon_to_geometry,
    relation_to_geojson,
    save_geojson,
)
from .features import Feature, FeatureSet, default_spatial_schema
from .geometry import BoundingBox, Point, Segment, cross
from .k_nearest import (
    KNearestStatistics,
    k_nearest,
    k_nearest_bruteforce,
    k_nearest_features,
)
from .plan_nodes import BufferJoinNode, KNearestNode
from .polygon import ConvexPolygon
from .vector import (
    PolylineFeature,
    RegionFeature,
    RepresentationCost,
    digitize,
    simplify_points,
    simplify_polyline,
    simplify_region,
)

__all__ = [
    "BoundingBox",
    "BufferJoinNode",
    "BufferJoinStatistics",
    "ConvexPolygon",
    "Feature",
    "FeatureSet",
    "KNearestNode",
    "KNearestStatistics",
    "Point",
    "PolylineFeature",
    "RegionFeature",
    "RepresentationCost",
    "Segment",
    "buffer_join",
    "buffer_join_bruteforce",
    "cross",
    "default_spatial_schema",
    "digitize",
    "feature_set_to_geojson",
    "feature_to_geojson",
    "k_nearest",
    "k_nearest_bruteforce",
    "k_nearest_features",
    "polygon_to_geometry",
    "relation_to_geojson",
    "save_geojson",
    "simplify_points",
    "simplify_polyline",
    "simplify_region",
]
