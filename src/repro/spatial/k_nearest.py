"""k-Nearest: the second whole-feature operator of section 4.

``KNearest(R, q, k)`` returns the ``k`` features of R closest (Euclidean)
to the query feature ``q``, as a relation over a feature-ID attribute and a
rank attribute.  Like Buffer-Join it is **safe**: ranks and feature IDs are
relational values; the (irrational) distances themselves never appear in
the output.

Evaluation is incremental best-first search over the feature-MBR R*-tree
(Hjaltason–Samet) with exact refinement: candidates stream out of the tree
in MINDIST order; because MBR MINDIST lower-bounds the exact feature
distance, the k best exact distances are final once the next candidate's
MINDIST exceeds the current k-th exact distance.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

from ..errors import GeometryError, ResourceExhausted
from ..exec import parallel_engine
from ..governor.budget import ProducerGuard
from ..model.relation import ConstraintRelation
from ..model.schema import Schema, relational
from ..model.tuples import HTuple
from ..model.types import DataType
from ..obs import LOGICAL_NODE_ACCESSES, MetricsRegistry, current_registry
from .features import Feature, FeatureSet


@dataclass
class KNearestStatistics:
    candidates_refined: int = 0
    index_accesses: int = 0


def k_nearest_features(
    features: FeatureSet,
    query: Feature,
    k: int,
    statistics: KNearestStatistics | None = None,
    registry: MetricsRegistry | None = None,
) -> list[tuple[Feature, float]]:
    """The ``k`` nearest features with their exact distances, nearest
    first; the returned list is sorted by (distance, feature id), and the
    candidate stream is deterministic, so results are reproducible.  The
    query feature itself is excluded when it belongs to the set.

    ``stats.index_accesses`` is attributed with a scoped counter on
    ``registry`` (the active registry when not given): only this call's
    node visits count, even when the index is shared within one plan."""
    if k < 1:
        raise GeometryError(f"k must be >= 1, got {k}")
    stats = statistics if statistics is not None else KNearestStatistics()
    reg = registry if registry is not None else current_registry()
    index = features.index()
    index.bind_registry(reg)
    # Widened float target box (mins down, maxs up): it contains the exact
    # box, so MINDIST from it only shrinks — the lower-bound property the
    # best-first termination test relies on survives the float conversion.
    fb = query.float_bbox()
    from ..indexing.mbr import MBR

    target = MBR((fb[0], fb[1]), (fb[2], fb[3]))
    # Max-heap (negated distances) of the best k exact results so far.
    # Exhaustion mid-search truncates to the best results found so far in
    # partial mode — a sound (if possibly incomplete) nearest set.
    best: list[tuple[float, str]] = []
    guard = ProducerGuard()
    engine = parallel_engine(len(features))
    if engine is not None:
        return _k_nearest_parallel(engine, features, query, k, target, stats, reg, guard)
    with reg.scope("k_nearest") as scoped:
        try:
            for mindist, fid in index.nearest_iter(target):
                if not guard.start_row():
                    break
                if fid == query.fid and fid in features and features[fid] is query:
                    continue
                if len(best) == k and mindist > -best[0][0]:
                    break  # no remaining candidate can beat the current k-th
                # Once the heap is full, the current k-th distance is a cutoff:
                # part pairs provably beyond it are skipped inside distance().
                # A candidate truly within the cutoff still gets its exact
                # distance; one beyond it yields some value > cutoff, which the
                # heap comparison rejects just the same.
                cutoff = -best[0][0] if len(best) == k else None
                exact = query.distance(features[fid], cutoff=cutoff)
                stats.candidates_refined += 1
                entry = (-exact, fid)
                if len(best) < k:
                    heapq.heappush(best, entry)
                elif entry > best[0]:  # smaller distance, or equal with smaller fid
                    heapq.heapreplace(best, entry)
        except ResourceExhausted as exc:
            if not guard.absorb(exc):
                raise
    stats.index_accesses += scoped.get(LOGICAL_NODE_ACCESSES, 0)
    ordered = sorted(((-negated, fid) for negated, fid in best))
    return [(features[fid], distance) for distance, fid in ordered]


def _knn_refine_task(
    payload: tuple[Feature, float | None], morsel: tuple[Feature, ...]
) -> list[float]:
    """Worker-side morsel task: exact distance from the query feature to
    each candidate, under the batch-start cutoff."""
    query, cutoff = payload
    return [query.distance(candidate, cutoff=cutoff) for candidate in morsel]


def _k_nearest_parallel(
    engine,
    features: FeatureSet,
    query: Feature,
    k: int,
    target,
    stats: KNearestStatistics,
    reg: MetricsRegistry,
    guard: ProducerGuard,
) -> list[tuple[Feature, float]]:
    """Batched best-first k-nearest: candidates are pulled from the
    MINDIST stream in batches, their exact distances refined in parallel
    morsels, and the heap updated serially in stream order.

    Provably result-identical to the serial loop: the batch cutoff
    (the k-th distance at batch start) is never tighter than the serial
    per-candidate cutoff, and :meth:`Feature.distance` returns the exact
    distance whenever it is within the cutoff, so every heap decision
    compares the same values in the same order.  The only differences are
    wasted work at the margins — a batch may refine a few candidates the
    serial loop's evolving cutoff would have rejected before refinement,
    and may read a few extra index nodes past the serial stop point.
    """
    from ..exec import rebuild_exhaustion, reconcile_consumed
    from ..exec.morsel import partition

    batch_size = max(engine.config.workers * 8, 16)
    best: list[tuple[float, str]] = []
    with reg.scope("k_nearest") as scoped:
        stream = iter(features.index().nearest_iter(target))
        done = False
        try:
            while not done:
                # Pull one batch under the batch-start termination bound.
                kth = -best[0][0] if len(best) == k else None
                batch: list[str] = []
                while len(batch) < batch_size:
                    try:
                        mindist, fid = next(stream)
                    except StopIteration:
                        done = True
                        break
                    if not guard.start_row():
                        done = True
                        break
                    if fid == query.fid and fid in features and features[fid] is query:
                        continue
                    if kth is not None and mindist > kth:
                        done = True
                        break
                    batch.append(fid)
                if not batch:
                    break
                morsels = partition(
                    [features[fid] for fid in batch], engine.morsel_size(len(batch))
                )
                outcomes = engine.map_morsels(
                    _knn_refine_task, (query, kth), morsels, label="k_nearest"
                )
                distances: list[float] = []
                failure = None
                budget = guard.budget
                for outcome in outcomes:
                    engine.merge_counters(reg, outcome)
                    if failure is not None:
                        continue
                    if outcome.failure is not None:
                        if budget is not None and budget.on_exhausted == "partial":
                            budget.mark_truncated()
                        else:
                            failure = outcome.failure
                        continue
                    reconcile_consumed(budget, outcome.consumed)
                    distances.extend(outcome.output)
                if failure is not None:
                    raise rebuild_exhaustion(failure)
                # Serial heap updates in stream order — identical
                # decisions to the serial loop (see the docstring).
                for fid, exact in zip(batch, distances):
                    stats.candidates_refined += 1
                    entry = (-exact, fid)
                    if len(best) < k:
                        heapq.heappush(best, entry)
                    elif entry > best[0]:
                        heapq.heapreplace(best, entry)
        except ResourceExhausted as exc:
            if not guard.absorb(exc):
                raise
    stats.index_accesses += scoped.get(LOGICAL_NODE_ACCESSES, 0)
    ordered = sorted(((-negated, fid) for negated, fid in best))
    return [(features[fid], distance) for distance, fid in ordered]


def k_nearest(
    features: FeatureSet,
    query: Feature,
    k: int,
    fid_attr: str = "fid",
    rank_attr: str = "rank",
    statistics: KNearestStatistics | None = None,
    registry: MetricsRegistry | None = None,
) -> ConstraintRelation:
    """The whole-feature operator: a relation of ``(feature id, rank)``
    rows, rank 1 = nearest.  Both attributes are relational, so the query
    is safe (section 4)."""
    if fid_attr == rank_attr:
        raise GeometryError("output attributes must have distinct names")
    schema = Schema([relational(fid_attr), relational(rank_attr, DataType.RATIONAL)])
    results = k_nearest_features(features, query, k, statistics, registry)
    guard = ProducerGuard()
    tuples: list[HTuple] = []
    for rank, (feature, _) in enumerate(results, start=1):
        if not guard.produced():
            break
        tuples.append(HTuple(schema, {fid_attr: feature.fid, rank_attr: rank}))
    return ConstraintRelation(schema, tuples)


def k_nearest_bruteforce(
    features: FeatureSet, query: Feature, k: int
) -> list[tuple[Feature, float]]:
    """Reference implementation: exact distance to every feature, sorted."""
    scored = sorted(
        (query.distance(candidate), candidate.fid)
        for candidate in features
        if candidate is not query
    )
    return [(features[fid], distance) for distance, fid in scored[:k]]
