"""k-Nearest: the second whole-feature operator of section 4.

``KNearest(R, q, k)`` returns the ``k`` features of R closest (Euclidean)
to the query feature ``q``, as a relation over a feature-ID attribute and a
rank attribute.  Like Buffer-Join it is **safe**: ranks and feature IDs are
relational values; the (irrational) distances themselves never appear in
the output.

Evaluation is incremental best-first search over the feature-MBR R*-tree
(Hjaltason–Samet) with exact refinement: candidates stream out of the tree
in MINDIST order; because MBR MINDIST lower-bounds the exact feature
distance, the k best exact distances are final once the next candidate's
MINDIST exceeds the current k-th exact distance.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

from ..errors import GeometryError, ResourceExhausted
from ..governor.budget import ProducerGuard
from ..model.relation import ConstraintRelation
from ..model.schema import Schema, relational
from ..model.tuples import HTuple
from ..model.types import DataType
from ..obs import LOGICAL_NODE_ACCESSES, MetricsRegistry, current_registry
from .features import Feature, FeatureSet


@dataclass
class KNearestStatistics:
    candidates_refined: int = 0
    index_accesses: int = 0


def k_nearest_features(
    features: FeatureSet,
    query: Feature,
    k: int,
    statistics: KNearestStatistics | None = None,
    registry: MetricsRegistry | None = None,
) -> list[tuple[Feature, float]]:
    """The ``k`` nearest features with their exact distances, nearest
    first; the returned list is sorted by (distance, feature id), and the
    candidate stream is deterministic, so results are reproducible.  The
    query feature itself is excluded when it belongs to the set.

    ``stats.index_accesses`` is attributed with a scoped counter on
    ``registry`` (the active registry when not given): only this call's
    node visits count, even when the index is shared within one plan."""
    if k < 1:
        raise GeometryError(f"k must be >= 1, got {k}")
    stats = statistics if statistics is not None else KNearestStatistics()
    reg = registry if registry is not None else current_registry()
    index = features.index()
    index.bind_registry(reg)
    target_box = query.bounding_box()
    from ..indexing.mbr import MBR

    target = MBR(
        (float(target_box.min_x), float(target_box.min_y)),
        (float(target_box.max_x), float(target_box.max_y)),
    )
    # Max-heap (negated distances) of the best k exact results so far.
    # Exhaustion mid-search truncates to the best results found so far in
    # partial mode — a sound (if possibly incomplete) nearest set.
    best: list[tuple[float, str]] = []
    guard = ProducerGuard()
    with reg.scope("k_nearest") as scoped:
        try:
            for mindist, fid in index.nearest_iter(target):
                if not guard.start_row():
                    break
                if fid == query.fid and fid in features and features[fid] is query:
                    continue
                if len(best) == k and mindist > -best[0][0]:
                    break  # no remaining candidate can beat the current k-th
                # Once the heap is full, the current k-th distance is a cutoff:
                # part pairs provably beyond it are skipped inside distance().
                # A candidate truly within the cutoff still gets its exact
                # distance; one beyond it yields some value > cutoff, which the
                # heap comparison rejects just the same.
                cutoff = -best[0][0] if len(best) == k else None
                exact = query.distance(features[fid], cutoff=cutoff)
                stats.candidates_refined += 1
                entry = (-exact, fid)
                if len(best) < k:
                    heapq.heappush(best, entry)
                elif entry > best[0]:  # smaller distance, or equal with smaller fid
                    heapq.heapreplace(best, entry)
        except ResourceExhausted as exc:
            if not guard.absorb(exc):
                raise
    stats.index_accesses += scoped.get(LOGICAL_NODE_ACCESSES, 0)
    ordered = sorted(((-negated, fid) for negated, fid in best))
    return [(features[fid], distance) for distance, fid in ordered]


def k_nearest(
    features: FeatureSet,
    query: Feature,
    k: int,
    fid_attr: str = "fid",
    rank_attr: str = "rank",
    statistics: KNearestStatistics | None = None,
    registry: MetricsRegistry | None = None,
) -> ConstraintRelation:
    """The whole-feature operator: a relation of ``(feature id, rank)``
    rows, rank 1 = nearest.  Both attributes are relational, so the query
    is safe (section 4)."""
    if fid_attr == rank_attr:
        raise GeometryError("output attributes must have distinct names")
    schema = Schema([relational(fid_attr), relational(rank_attr, DataType.RATIONAL)])
    results = k_nearest_features(features, query, k, statistics, registry)
    guard = ProducerGuard()
    tuples: list[HTuple] = []
    for rank, (feature, _) in enumerate(results, start=1):
        if not guard.produced():
            break
        tuples.append(HTuple(schema, {fid_attr: feature.fid, rank_attr: rank}))
    return ConstraintRelation(schema, tuples)


def k_nearest_bruteforce(
    features: FeatureSet, query: Feature, k: int
) -> list[tuple[Feature, float]]:
    """Reference implementation: exact distance to every feature, sorted."""
    scored = sorted(
        (query.distance(candidate), candidate.fid)
        for candidate in features
        if candidate is not query
    )
    return [(features[fid], distance) for distance, fid in scored[:k]]
