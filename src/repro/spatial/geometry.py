"""Exact 2-D geometric primitives.

Points carry rational coordinates so that orientation tests and
constraint⇄vertex conversions are exact; *distances* are Euclidean floats
(they involve square roots, which is precisely why raw distance is not a
safe constraint-query operator — section 4 of the paper).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from fractions import Fraction

from ..errors import GeometryError
from ..rational import RationalLike, to_rational


@dataclass(frozen=True)
class Point:
    """A point with exact rational coordinates."""

    x: Fraction
    y: Fraction

    def __init__(self, x: RationalLike, y: RationalLike):
        object.__setattr__(self, "x", to_rational(x))
        object.__setattr__(self, "y", to_rational(y))

    def distance_to(self, other: "Point") -> float:
        return math.hypot(float(self.x - other.x), float(self.y - other.y))

    def __str__(self) -> str:
        return f"({self.x}, {self.y})"


def cross(o: Point, a: Point, b: Point) -> Fraction:
    """The z-component of (a−o) × (b−o): positive for a left turn,
    negative for a right turn, zero for collinear points — exact."""
    return (a.x - o.x) * (b.y - o.y) - (a.y - o.y) * (b.x - o.x)


@dataclass(frozen=True)
class Segment:
    """A closed line segment between two rational points."""

    start: Point
    end: Point

    def __post_init__(self) -> None:
        if not isinstance(self.start, Point) or not isinstance(self.end, Point):
            raise GeometryError("segments require Point endpoints")

    @property
    def is_degenerate(self) -> bool:
        return self.start == self.end

    def length(self) -> float:
        return self.start.distance_to(self.end)

    def distance_to_point(self, p: Point) -> float:
        """Euclidean distance from ``p`` to the closest point of the
        segment (projection clamped to the endpoints)."""
        dx = float(self.end.x - self.start.x)
        dy = float(self.end.y - self.start.y)
        px = float(p.x - self.start.x)
        py = float(p.y - self.start.y)
        length_sq = dx * dx + dy * dy
        if length_sq == 0.0:
            return math.hypot(px, py)
        t = max(0.0, min(1.0, (px * dx + py * dy) / length_sq))
        return math.hypot(px - t * dx, py - t * dy)

    def intersects(self, other: "Segment") -> bool:
        """Whether the closed segments share a point (exact predicate)."""
        d1 = cross(other.start, other.end, self.start)
        d2 = cross(other.start, other.end, self.end)
        d3 = cross(self.start, self.end, other.start)
        d4 = cross(self.start, self.end, other.end)
        if ((d1 > 0) != (d2 > 0) and d1 != 0 and d2 != 0) and (
            (d3 > 0) != (d4 > 0) and d3 != 0 and d4 != 0
        ):
            return True
        return (
            (d1 == 0 and _on_segment(other, self.start))
            or (d2 == 0 and _on_segment(other, self.end))
            or (d3 == 0 and _on_segment(self, other.start))
            or (d4 == 0 and _on_segment(self, other.end))
        )

    def distance_to_segment(self, other: "Segment") -> float:
        """Minimum distance between two closed segments (0 when they
        intersect)."""
        if self.intersects(other):
            return 0.0
        return min(
            self.distance_to_point(other.start),
            self.distance_to_point(other.end),
            other.distance_to_point(self.start),
            other.distance_to_point(self.end),
        )

    def __str__(self) -> str:
        return f"{self.start} -> {self.end}"


def _on_segment(segment: Segment, p: Point) -> bool:
    """Whether a point known to be collinear with ``segment`` lies on it."""
    return (
        min(segment.start.x, segment.end.x) <= p.x <= max(segment.start.x, segment.end.x)
        and min(segment.start.y, segment.end.y) <= p.y <= max(segment.start.y, segment.end.y)
    )


@dataclass(frozen=True)
class BoundingBox:
    """An axis-aligned rational rectangle."""

    min_x: Fraction
    min_y: Fraction
    max_x: Fraction
    max_y: Fraction

    def __post_init__(self) -> None:
        if self.min_x > self.max_x or self.min_y > self.max_y:
            raise GeometryError(f"empty bounding box: {self}")

    @classmethod
    def of_points(cls, points: list[Point]) -> "BoundingBox":
        if not points:
            raise GeometryError("bounding box of zero points")
        return cls(
            min(p.x for p in points),
            min(p.y for p in points),
            max(p.x for p in points),
            max(p.y for p in points),
        )

    def expand(self, margin: RationalLike) -> "BoundingBox":
        m = to_rational(margin)
        if m < 0:
            raise GeometryError(f"cannot expand by a negative margin {m}")
        return BoundingBox(self.min_x - m, self.min_y - m, self.max_x + m, self.max_y + m)

    def union(self, other: "BoundingBox") -> "BoundingBox":
        return BoundingBox(
            min(self.min_x, other.min_x),
            min(self.min_y, other.min_y),
            max(self.max_x, other.max_x),
            max(self.max_y, other.max_y),
        )

    def intersects(self, other: "BoundingBox") -> bool:
        return (
            self.min_x <= other.max_x
            and other.min_x <= self.max_x
            and self.min_y <= other.max_y
            and other.min_y <= self.max_y
        )

    def __str__(self) -> str:
        return f"[{self.min_x}, {self.max_x}] x [{self.min_y}, {self.max_y}]"
