"""The vector data model (section 6): geometry instead of constraints.

Section 6 argues that the CDB framework's middle layer is
representation-neutral, and that for spatial data a vector representation
— linear features as point sequences, regions as outlines — avoids two
redundancies of the constraint representation:

1. non-spatial attributes duplicated across the constraint tuples of one
   feature, and
2. boundary constraints duplicated between neighbouring segments/polyhedra.

This module provides the vector types (:class:`PolylineFeature`,
:class:`RegionFeature`), exact ear-clipping convex decomposition (the
vector→constraint conversion for concave regions), Example 8's direct
projection, and :class:`RepresentationCost` accounting used by
``benchmarks/bench_representation.py`` to quantify the redundancy argument.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Iterable, Sequence

from ..errors import GeometryError
from .features import Feature
from .geometry import Point, cross
from .polygon import ConvexPolygon


@dataclass(frozen=True)
class RepresentationCost:
    """Size accounting for one feature under one representation.

    ``tuples`` — constraint tuples (or 1 for a vector feature);
    ``constraints`` — constraint atoms stored;
    ``coordinates`` — rational numbers stored (2 per vector point; counted
    per atom as coefficients+constant for constraints);
    ``duplicated_attributes`` — copies of the non-spatial attributes beyond
    the first (redundancy 1);
    ``shared_boundary_constraints`` — atoms describing a boundary that a
    neighbouring tuple also stores (redundancy 2).
    """

    tuples: int
    constraints: int
    coordinates: int
    duplicated_attributes: int
    shared_boundary_constraints: int

    def __add__(self, other: "RepresentationCost") -> "RepresentationCost":
        return RepresentationCost(
            self.tuples + other.tuples,
            self.constraints + other.constraints,
            self.coordinates + other.coordinates,
            self.duplicated_attributes + other.duplicated_attributes,
            self.shared_boundary_constraints + other.shared_boundary_constraints,
        )


class PolylineFeature:
    """A linear feature (road, river, hurricane path) as a point sequence."""

    __slots__ = ("fid", "points")

    def __init__(self, fid: str, points: Sequence[Point]):
        points = tuple(points)
        if len(points) < 2:
            raise GeometryError(f"polyline {fid!r} needs at least 2 points")
        for a, b in zip(points, points[1:]):
            if a == b:
                raise GeometryError(f"polyline {fid!r} has a zero-length segment at {a}")
        self.fid = fid
        self.points = points

    @property
    def segment_count(self) -> int:
        return len(self.points) - 1

    def to_feature(self) -> Feature:
        """The constraint-model view: one degenerate convex part (a
        segment) per polyline segment — "one [tuple] for every segment"."""
        parts = [
            ConvexPolygon([a, b]) for a, b in zip(self.points, self.points[1:])
        ]
        return Feature(self.fid, parts)

    def project(self, axis: str = "x") -> tuple[Fraction, Fraction]:
        """Example 8: projection by taking coordinate extrema directly."""
        values = [p.x if axis == "x" else p.y for p in self.points]
        return min(values), max(values)

    def vector_cost(self, extra_attributes: int = 0) -> RepresentationCost:
        """Stored size in the vector model: the points, once; non-spatial
        attributes stored once (no duplication)."""
        return RepresentationCost(
            tuples=1,
            constraints=0,
            coordinates=2 * len(self.points),
            duplicated_attributes=0,
            shared_boundary_constraints=0,
        )

    def constraint_cost(self, extra_attributes: int = 0) -> RepresentationCost:
        """Stored size in the constraint model (section 6.2): one tuple per
        segment, three constraints each (the collinear line and the two
        endpoint bounds); interior endpoints are stored by both adjacent
        segments."""
        tuples = self.segment_count
        constraints = 3 * tuples
        coordinates = sum(
            len(atom.expression.coefficients) + 1
            for part in self.to_feature().parts
            for atom in part.to_conjunction()
        )
        return RepresentationCost(
            tuples=tuples,
            constraints=constraints,
            coordinates=coordinates,
            duplicated_attributes=extra_attributes * (tuples - 1),
            shared_boundary_constraints=2 * (tuples - 1),
        )

    def __repr__(self) -> str:
        return f"<PolylineFeature {self.fid}: {len(self.points)} points>"


class RegionFeature:
    """A (possibly concave) region as a simple-polygon outline."""

    __slots__ = ("fid", "outline")

    def __init__(self, fid: str, outline: Sequence[Point]):
        outline = list(outline)
        if len(outline) >= 2 and outline[0] == outline[-1]:
            outline = outline[:-1]  # accept explicitly closed rings
        if len(outline) < 3:
            raise GeometryError(f"region {fid!r} needs at least 3 distinct outline points")
        if len(set(outline)) != len(outline):
            raise GeometryError(f"region {fid!r} repeats an outline point")
        if _signed_area2(outline) == 0:
            raise GeometryError(f"region {fid!r} outline is degenerate (zero area)")
        if _signed_area2(outline) < 0:
            outline.reverse()  # normalise to counter-clockwise
        self.fid = fid
        self.outline: tuple[Point, ...] = tuple(outline)

    def area(self) -> Fraction:
        return _signed_area2(self.outline) / 2

    @property
    def is_convex(self) -> bool:
        n = len(self.outline)
        return all(
            cross(self.outline[i], self.outline[(i + 1) % n], self.outline[(i + 2) % n]) >= 0
            for i in range(n)
        )

    def project(self, axis: str = "x") -> tuple[Fraction, Fraction]:
        """Example 8: projection via coordinate extrema of the outline."""
        values = [p.x if axis == "x" else p.y for p in self.outline]
        return min(values), max(values)

    def triangulate(self) -> list[ConvexPolygon]:
        """Exact ear-clipping decomposition into triangles — the union of
        convex polyhedra the constraint model requires for concave
        features.  Convex regions return themselves as a single part."""
        if self.is_convex:
            return [ConvexPolygon(self.outline)]
        remaining = list(self.outline)
        triangles: list[ConvexPolygon] = []
        guard = 0
        while len(remaining) > 3:
            guard += 1
            if guard > 4 * len(self.outline) ** 2:
                raise GeometryError(
                    f"ear clipping failed for region {self.fid!r}; is the outline simple?"
                )
            n = len(remaining)
            clipped = False
            for i in range(n):
                prev_p, cur, next_p = (
                    remaining[i - 1],
                    remaining[i],
                    remaining[(i + 1) % n],
                )
                turn = cross(prev_p, cur, next_p)
                if turn == 0:  # collinear vertex: drop it outright
                    del remaining[i]
                    clipped = True
                    break
                if turn < 0:  # reflex vertex: not an ear
                    continue
                if any(
                    _point_in_triangle(prev_p, cur, next_p, other)
                    for j, other in enumerate(remaining)
                    if j not in (i - 1 if i > 0 else n - 1, i, (i + 1) % n)
                ):
                    continue
                triangles.append(ConvexPolygon([prev_p, cur, next_p]))
                del remaining[i]
                clipped = True
                break
            if not clipped:
                raise GeometryError(
                    f"no ear found for region {self.fid!r}; the outline is not a "
                    "simple polygon"
                )
        triangles.append(ConvexPolygon(remaining))
        return triangles

    def to_feature(self) -> Feature:
        return Feature(self.fid, self.triangulate())

    def vector_cost(self, extra_attributes: int = 0) -> RepresentationCost:
        return RepresentationCost(
            tuples=1,
            constraints=0,
            coordinates=2 * len(self.outline),
            duplicated_attributes=0,
            shared_boundary_constraints=0,
        )

    def constraint_cost(self, extra_attributes: int = 0) -> RepresentationCost:
        """Stored size as a union of convex polyhedra: one tuple per part,
        one atom per edge; edges introduced by the decomposition are stored
        by both parts sharing them (redundancy 2)."""
        parts = self.triangulate()
        constraints = 0
        coordinates = 0
        edge_count: dict[frozenset[Point], int] = {}
        for part in parts:
            atoms = part.to_conjunction()
            constraints += len(atoms)
            coordinates += sum(len(a.expression.coefficients) + 1 for a in atoms)
            for edge in part.edges():
                key = frozenset((edge.start, edge.end))
                edge_count[key] = edge_count.get(key, 0) + 1
        shared = sum(count for count in edge_count.values() if count > 1)
        return RepresentationCost(
            tuples=len(parts),
            constraints=constraints,
            coordinates=coordinates,
            duplicated_attributes=extra_attributes * (len(parts) - 1),
            shared_boundary_constraints=shared,
        )

    def __repr__(self) -> str:
        return f"<RegionFeature {self.fid}: {len(self.outline)} outline points>"


def _signed_area2(points: Sequence[Point]) -> Fraction:
    """Twice the signed area (positive for counter-clockwise outlines)."""
    total = Fraction(0)
    n = len(points)
    for i in range(n):
        p, q = points[i], points[(i + 1) % n]
        total += p.x * q.y - q.x * p.y
    return total


def _point_in_triangle(a: Point, b: Point, c: Point, p: Point) -> bool:
    """Closed containment of ``p`` in CCW triangle ``abc`` (exact)."""
    return cross(a, b, p) >= 0 and cross(b, c, p) >= 0 and cross(c, a, p) >= 0


def simplify_points(points: Sequence[Point], tolerance: float) -> list[Point]:
    """Douglas–Peucker line simplification.

    Returns a subsequence of ``points`` (endpoints always kept) whose
    maximum deviation from the original chain is at most ``tolerance`` —
    the approximation step the paper attributes to MLPQ/GIS-style
    "approximation and conversion modules", and the practical way to
    shorten digitised features before constraint conversion ("a data model
    based on linear constraints can approximate any spatial extent to an
    arbitrary accuracy, by making line segments shorter" — and coarser
    when accuracy allows).
    """
    from .geometry import Segment

    if tolerance < 0:
        raise GeometryError(f"tolerance must be non-negative, got {tolerance}")
    if len(points) <= 2:
        return list(points)
    chord = Segment(points[0], points[-1])
    worst_index = 0
    worst_distance = -1.0
    for i in range(1, len(points) - 1):
        d = chord.distance_to_point(points[i])
        if d > worst_distance:
            worst_distance = d
            worst_index = i
    if worst_distance <= tolerance:
        return [points[0], points[-1]]
    left = simplify_points(points[: worst_index + 1], tolerance)
    right = simplify_points(points[worst_index:], tolerance)
    return left[:-1] + right


def simplify_polyline(feature: PolylineFeature, tolerance: float) -> PolylineFeature:
    """A simplified copy of a polyline (same id)."""
    return PolylineFeature(feature.fid, simplify_points(feature.points, tolerance))


def simplify_region(feature: RegionFeature, tolerance: float) -> RegionFeature:
    """A simplified copy of a region outline.

    The ring is opened at its two mutually-farthest vertices (anchors that
    Douglas–Peucker will never drop), each half simplified independently,
    and the halves rejoined.  Raises if simplification collapses the
    region below three vertices.
    """
    outline = feature.outline
    n = len(outline)
    best = (0, n // 2)
    best_distance = -1.0
    for i in range(n):
        for j in range(i + 1, n):
            d = outline[i].distance_to(outline[j])
            if d > best_distance:
                best_distance = d
                best = (i, j)
    i, j = best
    first_arc = list(outline[i : j + 1])
    second_arc = list(outline[j:]) + list(outline[: i + 1])
    kept_first = simplify_points(first_arc, tolerance)
    kept_second = simplify_points(second_arc, tolerance)
    ring = kept_first[:-1] + kept_second[:-1]
    if len(ring) < 3:
        raise GeometryError(
            f"tolerance {tolerance} collapses region {feature.fid!r} below 3 vertices"
        )
    return RegionFeature(feature.fid, ring)


def digitize(points: Iterable[tuple], fid: str, kind: str = "polyline") -> PolylineFeature | RegionFeature:
    """Simulate GIS digitization (section 6.2): turn a raw stream of
    coordinate pairs into a vector feature."""
    materialised = [Point(x, y) for x, y in points]
    if kind == "polyline":
        return PolylineFeature(fid, materialised)
    if kind == "region":
        return RegionFeature(fid, materialised)
    raise GeometryError(f"unknown feature kind {kind!r} (use 'polyline' or 'region')")
