"""Convex polygons with exact constraint ⇄ vertex conversion.

A constraint tuple over two spatial attributes describes a convex region
(section 4.2: spatial constraint relations are unions of convex polyhedra,
one per tuple).  :class:`ConvexPolygon` is the geometric view of one such
tuple: it can be *enumerated* from a satisfiable bounded
:class:`~repro.constraints.Conjunction` and *converted back* to one —
the two costly conversions the paper discusses in section 6.2.

Degenerate regions are first-class: one vertex is a point, two vertices a
segment.  Vertices are stored in counter-clockwise order with exact
rational coordinates.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterator, Sequence

from ..constraints import Comparator, Conjunction, LinearConstraint, LinearExpression, eq, ge, le
from ..errors import GeometryError
from .geometry import BoundingBox, Point, Segment, cross


def _convex_hull(points: Sequence[Point]) -> list[Point]:
    """Andrew's monotone chain over exact rational points; collinear
    points on the hull boundary are dropped.  Handles 0/1/2-point and
    fully-collinear inputs by returning the extreme points."""
    unique = sorted(set(points), key=lambda p: (p.x, p.y))
    if len(unique) <= 2:
        return unique
    lower: list[Point] = []
    for p in unique:
        while len(lower) >= 2 and cross(lower[-2], lower[-1], p) <= 0:
            lower.pop()
        lower.append(p)
    upper: list[Point] = []
    for p in reversed(unique):
        while len(upper) >= 2 and cross(upper[-2], upper[-1], p) <= 0:
            upper.pop()
        upper.append(p)
    hull = lower[:-1] + upper[:-1]
    if len(hull) <= 1:  # all collinear: keep the two extremes
        return [unique[0], unique[-1]]
    return hull


def _solve_lines(
    a1: Fraction, b1: Fraction, c1: Fraction, a2: Fraction, b2: Fraction, c2: Fraction
) -> Point | None:
    """Intersection of a1·x + b1·y + c1 = 0 and a2·x + b2·y + c2 = 0."""
    det = a1 * b2 - a2 * b1
    if det == 0:
        return None
    x = (b1 * c2 - b2 * c1) / det
    y = (a2 * c1 - a1 * c2) / det
    return Point(x, y)


class ConvexPolygon:
    """An immutable convex region given by CCW vertices (1 = point,
    2 = segment, >= 3 = polygon)."""

    __slots__ = ("vertices", "_bbox")

    def __init__(self, vertices: Sequence[Point]):
        hull = _convex_hull(list(vertices))
        if not hull:
            raise GeometryError("a polygon needs at least one vertex")
        self.vertices: tuple[Point, ...] = tuple(hull)
        self._bbox: BoundingBox | None = None

    # -- constructors ------------------------------------------------------

    @classmethod
    def from_conjunction(
        cls, formula: Conjunction, x: str = "x", y: str = "y"
    ) -> "ConvexPolygon":
        """Vertex enumeration of the region a constraint tuple describes.

        The formula must mention only ``x``/``y``, be satisfiable and
        bounded.  Strict inequalities are closed (the topological closure is
        taken): spatial extents in the paper's data model are closed
        regions, and closure does not change area or distance.
        """
        stray = formula.variables - {x, y}
        if stray:
            raise GeometryError(f"formula mentions non-spatial variables {sorted(stray)}")
        if not formula.is_satisfiable():
            raise GeometryError("cannot enumerate an unsatisfiable region")
        for variable in (x, y):
            lower, _, upper, _ = formula.bounds(variable)
            if lower is None or upper is None:
                raise GeometryError(
                    f"region is unbounded in {variable!r}; only bounded spatial "
                    "extents have a vertex representation"
                )
        lines: list[tuple[Fraction, Fraction, Fraction]] = []
        closed_atoms: list[LinearConstraint] = []
        for atom in formula:
            expr = atom.expression
            a, b = expr.coefficient(x), expr.coefficient(y)
            lines.append((a, b, expr.constant))
            closed = atom if atom.comparator is not Comparator.LT else LinearConstraint(
                expr, Comparator.LE
            )
            closed_atoms.append(closed)
        candidates: list[Point] = []
        for i in range(len(lines)):
            for j in range(i + 1, len(lines)):
                point = _solve_lines(*lines[i], *lines[j])
                if point is None:
                    continue
                assignment = {x: point.x, y: point.y}
                if all(c.satisfied_by(assignment) for c in closed_atoms):
                    candidates.append(point)
        if not candidates:
            raise GeometryError(
                "no boundary vertices found; the region is degenerate beyond "
                "representation (this should not happen for bounded regions)"
            )
        return cls(candidates)

    @classmethod
    def box(cls, min_x, min_y, max_x, max_y) -> "ConvexPolygon":
        return cls(
            [Point(min_x, min_y), Point(max_x, min_y), Point(max_x, max_y), Point(min_x, max_y)]
        )

    # -- conversion back to constraints -------------------------------------

    def to_conjunction(self, x: str = "x", y: str = "y") -> Conjunction:
        """The constraint-tuple formula of this region: one half-plane atom
        per edge (a point yields two equalities; a segment yields the
        collinear-line equality plus endpoint bounds — the "three
        constraints per segment" of section 6.2)."""
        ex = LinearExpression.variable(x)
        ey = LinearExpression.variable(y)
        if len(self.vertices) == 1:
            p = self.vertices[0]
            return Conjunction([eq(ex, p.x), eq(ey, p.y)])
        if len(self.vertices) == 2:
            p, q = self.vertices
            line = (q.y - p.y) * ex - (q.x - p.x) * ey
            offset = (q.y - p.y) * p.x - (q.x - p.x) * p.y
            atoms = [eq(line, offset)]
            if p.x != q.x:
                atoms.append(ge(ex, min(p.x, q.x)))
                atoms.append(le(ex, max(p.x, q.x)))
            else:
                atoms.append(ge(ey, min(p.y, q.y)))
                atoms.append(le(ey, max(p.y, q.y)))
            return Conjunction(atoms)
        atoms = []
        for p, q in self._vertex_pairs():
            # Interior lies to the left of each CCW edge pq:
            # (q.x - p.x)(y - p.y) - (q.y - p.y)(x - p.x) >= 0.
            expr = (q.x - p.x) * (ey - p.y) - (q.y - p.y) * (ex - p.x)
            atoms.append(ge(expr, 0))
        return Conjunction(atoms)

    # -- geometry ------------------------------------------------------------

    def _vertex_pairs(self) -> Iterator[tuple[Point, Point]]:
        n = len(self.vertices)
        for i in range(n):
            yield self.vertices[i], self.vertices[(i + 1) % n]

    def edges(self) -> list[Segment]:
        """Boundary segments (a point has one degenerate segment)."""
        if len(self.vertices) == 1:
            p = self.vertices[0]
            return [Segment(p, p)]
        if len(self.vertices) == 2:
            return [Segment(self.vertices[0], self.vertices[1])]
        return [Segment(p, q) for p, q in self._vertex_pairs()]

    def area(self) -> Fraction:
        """Exact area (shoelace); 0 for degenerate regions."""
        if len(self.vertices) < 3:
            return Fraction(0)
        total = Fraction(0)
        for p, q in self._vertex_pairs():
            total += p.x * q.y - q.x * p.y
        return total / 2

    def bounding_box(self) -> BoundingBox:
        """The exact rational bounding box, computed once.

        Cached because :meth:`intersects` consults both operands' boxes
        for every part pair of every refinement candidate — recomputing
        the rational min/max over the vertices dominated the spatial
        refine path.  Safe to cache: the polygon is immutable.
        """
        box = self._bbox
        if box is None:
            box = self._bbox = BoundingBox.of_points(list(self.vertices))
        return box

    def centroid(self) -> Point:
        n = len(self.vertices)
        return Point(
            sum((v.x for v in self.vertices), Fraction(0)) / n,
            sum((v.y for v in self.vertices), Fraction(0)) / n,
        )

    def contains_point(self, point: Point) -> bool:
        """Closed containment (boundary included), exact."""
        if len(self.vertices) == 1:
            return self.vertices[0] == point
        if len(self.vertices) == 2:
            segment = Segment(self.vertices[0], self.vertices[1])
            if cross(segment.start, segment.end, point) != 0:
                return False
            return (
                min(segment.start.x, segment.end.x) <= point.x <= max(segment.start.x, segment.end.x)
                and min(segment.start.y, segment.end.y) <= point.y <= max(segment.start.y, segment.end.y)
            )
        return all(cross(p, q, point) >= 0 for p, q in self._vertex_pairs())

    def intersects(self, other: "ConvexPolygon") -> bool:
        """Whether the closed regions share a point (exact)."""
        if not self.bounding_box().intersects(other.bounding_box()):
            return False
        if any(self.contains_point(v) for v in other.vertices):
            return True
        if any(other.contains_point(v) for v in self.vertices):
            return True
        return any(
            mine.intersects(theirs) for mine in self.edges() for theirs in other.edges()
        )

    def distance(self, other: "ConvexPolygon") -> float:
        """Euclidean minimum distance between the closed regions (0 when
        they intersect).  For disjoint convex regions the minimum is
        attained between boundary segments."""
        if self.intersects(other):
            return 0.0
        return min(
            mine.distance_to_segment(theirs)
            for mine in self.edges()
            for theirs in other.edges()
        )

    # -- value semantics -------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ConvexPolygon):
            return NotImplemented
        if len(self.vertices) != len(other.vertices):
            return False
        if set(self.vertices) != set(other.vertices):
            return False
        return True  # same vertex set and both CCW-canonical

    def __hash__(self) -> int:
        return hash(frozenset(self.vertices))

    def __repr__(self) -> str:
        return f"ConvexPolygon({', '.join(str(v) for v in self.vertices)})"
