"""Buffer-Join: the first whole-feature operator of section 4.

``BufferJoin(R, S, d)`` pairs every feature of R with every feature of S
whose Euclidean distance is at most ``d``.  The output is a relation over
two *relational* feature-ID attributes — no distance value ever appears in
the output, which is exactly why the operator is **safe** (the raw
``distance`` operator is not: its output would leave the linear constraint
class).

Evaluation is the classic two-step spatial join (Brinkhoff et al.):

1. *filter* — search the S-side R*-tree with each R feature's bounding box
   expanded by ``d`` (an MBR-distance lower bound);
2. *refine* — compute the exact convex-part distance for the survivors,
   with two extra per-candidate prunes: the Euclidean box distance between
   the whole features (the index filter is an L∞ box overlap test, so
   diagonal neighbours slip through it), and per part-pair box distances
   inside :meth:`Feature.distance` driven by ``cutoff=d``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import GeometryError, ResourceExhausted
from ..exec import columnar as _cx
from ..exec import parallel_engine
from ..governor.budget import ProducerGuard
from ..indexing.mbr import MBR
from ..model.relation import ConstraintRelation
from ..model.schema import Schema, relational
from ..model.tuples import HTuple
from ..obs import (
    COLUMNAR_BATCHES,
    COLUMNAR_FALLBACK,
    COLUMNAR_FILTERED,
    LOGICAL_NODE_ACCESSES,
    SPATIAL_REFINE_PRUNES,
    MetricsRegistry,
    current_registry,
    record,
)
from ..rational import RationalLike, float_down, float_up, to_rational
from .features import Feature, FeatureSet, box_mindist_sq

try:
    import numpy as _np
except ImportError:  # pragma: no cover - the CI image always has numpy
    _np = None  # type: ignore[assignment]


def _query_mbr(feature: Feature, d) -> MBR:
    """The widened float query box: the exact bounding box expanded by
    ``d``, with mins rounded down and maxs up so no boundary candidate
    can be lost to float narrowing."""
    box = feature.bounding_box().expand(d)
    return MBR(
        (float_down(box.min_x), float_down(box.min_y)),
        (float_up(box.max_x), float_up(box.max_y)),
    )


def _batched_dists_sq(feature_box, right: FeatureSet, candidates, d_sq: float):
    """Squared whole-feature box distances for one candidate list as one
    vectorized batch, or ``None`` to bypass to the scalar per-candidate
    test.  The kernel is elementwise-identical to
    :func:`~repro.spatial.features.box_mindist_sq`, so the per-candidate
    prune decisions (and statistics) are unchanged — only the Python-level
    box arithmetic is batched away."""
    if _np is None or not _cx.columnar_active() or len(candidates) < _cx.MIN_BATCH:
        return None
    rowmap, lowers, uppers = right.columnar_boxes()
    rows = [rowmap[fid] for fid in candidates]
    dists = _cx.box_mindist_sq_batch(feature_box, lowers[rows], uppers[rows])
    over = int((dists > d_sq).sum())
    record(COLUMNAR_BATCHES)
    record(COLUMNAR_FILTERED, over)
    record(COLUMNAR_FALLBACK, len(candidates) - over)
    return dists


@dataclass
class BufferJoinStatistics:
    """Filter/refine effectiveness counters for one run."""

    candidate_pairs: int = 0
    result_pairs: int = 0
    index_accesses: int = 0
    #: Candidates rejected by the whole-feature Euclidean box distance
    #: before any exact part-pair distance was computed.
    pruned_pairs: int = 0

    @property
    def refinement_rate(self) -> float:
        return self.result_pairs / self.candidate_pairs if self.candidate_pairs else 0.0


def buffer_join(
    left: FeatureSet,
    right: FeatureSet,
    distance: RationalLike,
    left_attr: str = "fid1",
    right_attr: str = "fid2",
    statistics: BufferJoinStatistics | None = None,
    registry: MetricsRegistry | None = None,
) -> ConstraintRelation:
    """All pairs ``(left feature, right feature)`` within ``distance``.

    Returns a relation over two string relational attributes, keyed by
    feature IDs (section 4's whole-feature contract).  Joining a feature
    set with itself pairs distinct features only (a feature is trivially
    within any distance of itself).

    Index accesses are attributed through a scoped counter on ``registry``
    (the active registry when not given), so ``stats.index_accesses`` is
    exactly this call's work even when the index is shared with other
    operators in one plan — a delta-read of ``index.search_accesses``
    cannot make that distinction.
    """
    d = to_rational(distance)
    if d < 0:
        raise GeometryError(f"buffer distance must be non-negative, got {d}")
    if left_attr == right_attr:
        raise GeometryError("output attributes must have distinct names")
    schema = Schema([relational(left_attr), relational(right_attr)])
    stats = statistics if statistics is not None else BufferJoinStatistics()
    reg = registry if registry is not None else current_registry()
    index = right.index()
    index.bind_registry(reg)
    d_float = float(d)
    d_sq = d_float * d_float
    engine = parallel_engine(len(left))
    if engine is not None:
        return _buffer_join_parallel(
            engine, left, right, index, d, d_float, schema, left_attr, right_attr, stats, reg
        )
    guard = ProducerGuard()
    tuples: list[HTuple] = []
    self_join = left is right
    stopped = False
    with reg.scope("buffer_join") as scoped:
        for feature in left:
            if stopped or not guard.start_row():
                break
            try:
                candidates = index.search(_query_mbr(feature, d))
                feature_box = feature.float_bbox()
                dists_sq = _batched_dists_sq(feature_box, right, candidates, d_sq)
                for pos, fid in enumerate(candidates):
                    if self_join and fid == feature.fid:
                        continue
                    stats.candidate_pairs += 1
                    candidate = right[fid]
                    # The index filter is an L∞ test (box expanded by d on each
                    # axis); the Euclidean box distance is tighter on diagonal
                    # neighbours and still lower-bounds the exact distance.
                    lower_sq = (
                        dists_sq[pos]
                        if dists_sq is not None
                        else box_mindist_sq(feature_box, candidate.float_bbox())
                    )
                    if lower_sq > d_sq:
                        stats.pruned_pairs += 1
                        record(SPATIAL_REFINE_PRUNES)
                        continue
                    if feature.distance(candidate, cutoff=d_float) <= d_float:
                        if not guard.produced():
                            stopped = True
                            break
                        stats.result_pairs += 1
                        tuples.append(
                            HTuple(schema, {left_attr: feature.fid, right_attr: fid})
                        )
            except ResourceExhausted as exc:
                if not guard.absorb(exc):
                    raise
                break
    stats.index_accesses += scoped.get(LOGICAL_NODE_ACCESSES, 0)
    return ConstraintRelation(schema, tuples)


def _refine_task(d_float: float, morsel: tuple[tuple[Feature, Feature], ...]) -> list[bool]:
    """Worker-side morsel task: exact within-distance test per candidate
    pair (part-pair box prunes are recorded to the worker registry and
    merged back)."""
    return [a.distance(b, cutoff=d_float) <= d_float for a, b in morsel]


def _buffer_join_parallel(
    engine,
    left: FeatureSet,
    right: FeatureSet,
    index,
    d,
    d_float: float,
    schema: Schema,
    left_attr: str,
    right_attr: str,
    stats: BufferJoinStatistics,
    reg: MetricsRegistry,
) -> ConstraintRelation:
    """The morsel-parallel Buffer-Join: serial index filter (phase 1),
    parallel exact-distance refinement over candidate pairs (phase 2),
    then an ordered merge that re-produces accepted pairs in the serial
    iteration order (phase 3) — bit-identical to the serial loop.
    """
    from ..exec import rebuild_exhaustion, reconcile_consumed
    from ..exec.morsel import partition

    d_sq = d_float * d_float
    guard = ProducerGuard()
    self_join = left is right
    pairs: list[tuple[Feature, Feature]] = []
    tuples: list[HTuple] = []
    with reg.scope("buffer_join") as scoped:
        # Phase 1 — filter: same index searches and box-distance prunes,
        # in the same order, as the serial loop; survivors are collected
        # instead of refined inline.
        try:
            for feature in left:
                if not guard.start_row():
                    break
                candidates = index.search(_query_mbr(feature, d))
                feature_box = feature.float_bbox()
                dists_sq = _batched_dists_sq(feature_box, right, candidates, d_sq)
                for pos, fid in enumerate(candidates):
                    if self_join and fid == feature.fid:
                        continue
                    stats.candidate_pairs += 1
                    candidate = right[fid]
                    lower_sq = (
                        dists_sq[pos]
                        if dists_sq is not None
                        else box_mindist_sq(feature_box, candidate.float_bbox())
                    )
                    if lower_sq > d_sq:
                        stats.pruned_pairs += 1
                        record(SPATIAL_REFINE_PRUNES)
                        continue
                    pairs.append((feature, candidate))
        except ResourceExhausted as exc:
            if not guard.absorb(exc):
                raise
        budget = guard.budget
        if budget is not None and budget.truncated:
            # Filter-phase exhaustion (deadline / IO): the serial loop
            # stops producing at this point, so drop the unrefined tail.
            pairs = []
        # Phase 2 — refine: dispatch exact distance tests per morsel.
        flags: list[bool] = []
        if pairs:
            morsels = partition(pairs, engine.morsel_size(len(pairs)))
            outcomes = engine.map_morsels(_refine_task, d_float, morsels, label="buffer_join")
            failure = None
            for outcome in outcomes:
                engine.merge_counters(reg, outcome)
                if failure is not None:
                    continue
                if outcome.failure is not None:
                    if budget is not None and budget.on_exhausted == "partial":
                        budget.mark_truncated()
                    else:
                        failure = outcome.failure
                    continue
                reconcile_consumed(budget, outcome.consumed)
                flags.extend(outcome.output)
            if failure is not None:
                raise rebuild_exhaustion(failure)
        # Phase 3 — ordered merge: accepted pairs produce in exactly the
        # serial order, so the output-tuple cap truncates identically.
        for (feature, candidate), accepted in zip(pairs, flags):
            if not accepted:
                continue
            if not guard.produced():
                break
            stats.result_pairs += 1
            tuples.append(
                HTuple(schema, {left_attr: feature.fid, right_attr: candidate.fid})
            )
    stats.index_accesses += scoped.get(LOGICAL_NODE_ACCESSES, 0)
    return ConstraintRelation(schema, tuples)


def buffer_join_bruteforce(
    left: FeatureSet,
    right: FeatureSet,
    distance: RationalLike,
    left_attr: str = "fid1",
    right_attr: str = "fid2",
) -> ConstraintRelation:
    """Reference implementation without the index filter step (used by the
    tests and as the baseline in ``benchmarks/bench_spatial_operators.py``)."""
    d = float(to_rational(distance))
    schema = Schema([relational(left_attr), relational(right_attr)])
    self_join = left is right
    tuples = [
        HTuple(schema, {left_attr: a.fid, right_attr: b.fid})
        for a in left
        for b in right
        if not (self_join and a.fid == b.fid) and a.distance(b) <= d
    ]
    return ConstraintRelation(schema, tuples)
