"""GeoJSON export: the visual-output conversion of section 6.2.

"When displaying a feature as part of data visualization or query output,
the reverse conversion must take place.  In order to display a feature,
its boundary points have to be computed from the constraints."  This
module is that conversion's last mile: features (or spatial constraint
relations, via vertex enumeration) to RFC 7946 GeoJSON dictionaries that
any GIS viewer renders directly.

Coordinates are emitted as floats (display precision); the exact rational
data stays in the database.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from ..errors import GeometryError
from ..model.relation import ConstraintRelation
from .features import Feature, FeatureSet
from .polygon import ConvexPolygon


def _ring(polygon: ConvexPolygon) -> list[list[float]]:
    """A closed CCW ring (GeoJSON wants the first point repeated last)."""
    coordinates = [[float(v.x), float(v.y)] for v in polygon.vertices]
    coordinates.append(list(coordinates[0]))
    return coordinates


def polygon_to_geometry(polygon: ConvexPolygon) -> dict[str, Any]:
    """One convex part as a GeoJSON geometry (Point / LineString /
    Polygon, by degeneracy)."""
    vertices = polygon.vertices
    if len(vertices) == 1:
        return {"type": "Point", "coordinates": [float(vertices[0].x), float(vertices[0].y)]}
    if len(vertices) == 2:
        return {
            "type": "LineString",
            "coordinates": [[float(v.x), float(v.y)] for v in vertices],
        }
    return {"type": "Polygon", "coordinates": [_ring(polygon)]}


def feature_to_geojson(feature: Feature, properties: dict[str, Any] | None = None) -> dict[str, Any]:
    """A GeoJSON Feature.  Homogeneous multi-part geometries collapse to
    MultiPoint/MultiLineString/MultiPolygon; mixed ones use a
    GeometryCollection."""
    geometries = [polygon_to_geometry(part) for part in feature.parts]
    kinds = {g["type"] for g in geometries}
    geometry: dict[str, Any]
    if len(geometries) == 1:
        geometry = geometries[0]
    elif kinds == {"Polygon"}:
        geometry = {
            "type": "MultiPolygon",
            "coordinates": [g["coordinates"] for g in geometries],
        }
    elif kinds == {"LineString"}:
        geometry = {
            "type": "MultiLineString",
            "coordinates": [g["coordinates"] for g in geometries],
        }
    elif kinds == {"Point"}:
        geometry = {
            "type": "MultiPoint",
            "coordinates": [g["coordinates"] for g in geometries],
        }
    else:
        geometry = {"type": "GeometryCollection", "geometries": geometries}
    return {
        "type": "Feature",
        "id": feature.fid,
        "geometry": geometry,
        "properties": {"fid": feature.fid, **(properties or {})},
    }


def feature_set_to_geojson(features: FeatureSet) -> dict[str, Any]:
    """A GeoJSON FeatureCollection (features in insertion order)."""
    return {
        "type": "FeatureCollection",
        "features": [feature_to_geojson(f) for f in features],
    }


def relation_to_geojson(
    relation: ConstraintRelation,
    fid_attr: str = "fid",
    x: str = "x",
    y: str = "y",
) -> dict[str, Any]:
    """A spatial constraint relation straight to GeoJSON — vertex
    enumeration per tuple, grouped by feature ID (the full §6.2 display
    pipeline in one call)."""
    return feature_set_to_geojson(FeatureSet.from_relation(relation, fid_attr, x, y))


def save_geojson(obj: dict[str, Any], path: str | Path, indent: int | None = 2) -> None:
    if obj.get("type") not in ("FeatureCollection", "Feature"):
        raise GeometryError(f"not a GeoJSON Feature/FeatureCollection: {obj.get('type')!r}")
    Path(path).write_text(json.dumps(obj, indent=indent), encoding="utf-8")
