"""Plan nodes for the whole-feature operators.

These let Buffer-Join and k-Nearest participate in CQA plans (and in the
ASCII query language) alongside the six primitives.  Both nodes are *safe*
(their outputs are purely relational), in contrast to
:class:`repro.algebra.safety.UnsafeDistance`.
"""

from __future__ import annotations

from ..algebra.plan import EvaluationContext, PlanNode
from ..errors import AlgebraError
from ..model.database import Database
from ..model.relation import ConstraintRelation
from ..model.schema import Schema, relational
from ..model.types import DataType
from ..rational import RationalLike, format_rational, to_rational
from .buffer_join import BufferJoinStatistics, buffer_join
from .features import FeatureSet
from .k_nearest import KNearestStatistics, k_nearest


def _spatial_attrs(relation: ConstraintRelation) -> tuple[str, str, str]:
    """Infer (fid, x, y) for a spatial constraint relation: the single
    string relational attribute and the two constraint attributes."""
    schema = relation.schema
    fids = [a.name for a in schema if a.is_relational and a.data_type is DataType.STRING]
    spatial = [a.name for a in schema if a.is_constraint]
    if len(fids) != 1 or len(spatial) != 2:
        raise AlgebraError(
            "whole-feature operators need a spatial constraint relation: one "
            f"string feature-id attribute and two constraint attributes; got "
            f"({', '.join(str(a) for a in schema)})"
        )
    return fids[0], spatial[0], spatial[1]


class BufferJoinNode(PlanNode):
    """``BufferJoin(left, right, d)`` as a plan node (section 4)."""

    def __init__(
        self,
        left: PlanNode,
        right: PlanNode,
        distance: RationalLike,
        left_attr: str = "fid1",
        right_attr: str = "fid2",
    ):
        self.left = left
        self.right = right
        self.distance = to_rational(distance)
        self.left_attr = left_attr
        self.right_attr = right_attr

    @property
    def children(self) -> tuple[PlanNode, ...]:
        return (self.left, self.right)

    def with_children(self, children):
        left, right = children
        return BufferJoinNode(left, right, self.distance, self.left_attr, self.right_attr)

    def infer_schema(self, database: Database) -> Schema:
        return Schema([relational(self.left_attr), relational(self.right_attr)])

    def _evaluate(self, context: EvaluationContext) -> ConstraintRelation:
        left_rel = self.left.evaluate(context)
        right_rel = self.right.evaluate(context)
        left_set = FeatureSet.from_relation(left_rel, *_spatial_attrs(left_rel))
        if left_rel == right_rel:
            # Self-join: reuse the left set so buffer_join's identity-based
            # self-pair exclusion applies (a feature is trivially within
            # any distance of itself).
            right_set = left_set
        else:
            right_set = FeatureSet.from_relation(right_rel, *_spatial_attrs(right_rel))
        stats = BufferJoinStatistics()
        result = buffer_join(
            left_set,
            right_set,
            self.distance,
            self.left_attr,
            self.right_attr,
            statistics=stats,
            registry=context.registry,
        )
        context.metrics.index_node_accesses += stats.index_accesses
        context.metrics.index_candidates += stats.candidate_pairs
        context.metrics.count("buffer_join", len(result))
        return result

    def describe(self) -> str:
        return f"BufferJoin(d={format_rational(self.distance)})"


class KNearestNode(PlanNode):
    """``KNearest(child, query-feature-id, k)`` as a plan node.

    The query feature is named by id and looked up in ``query_child`` when
    given ("the 3 shelters nearest to parcel A": child = Shelters,
    query_child = Parcels), otherwise in the evaluated child relation
    itself (nearest neighbours *within* one layer).
    """

    def __init__(
        self,
        child: PlanNode,
        query_fid: str,
        k: int,
        fid_attr: str = "fid",
        rank_attr: str = "rank",
        query_child: PlanNode | None = None,
    ):
        if k < 1:
            raise AlgebraError(f"k must be >= 1, got {k}")
        self.child = child
        self.query_fid = query_fid
        self.k = k
        self.fid_attr = fid_attr
        self.rank_attr = rank_attr
        self.query_child = query_child

    @property
    def children(self) -> tuple[PlanNode, ...]:
        if self.query_child is None:
            return (self.child,)
        return (self.child, self.query_child)

    def with_children(self, children):
        if len(children) == 1:
            (child,) = children
            query_child = None
        else:
            child, query_child = children
        return KNearestNode(
            child, self.query_fid, self.k, self.fid_attr, self.rank_attr, query_child
        )

    def infer_schema(self, database: Database) -> Schema:
        return Schema(
            [relational(self.fid_attr), relational(self.rank_attr, DataType.RATIONAL)]
        )

    def _evaluate(self, context: EvaluationContext) -> ConstraintRelation:
        relation = self.child.evaluate(context)
        feature_set = FeatureSet.from_relation(relation, *_spatial_attrs(relation))
        if self.query_child is not None:
            query_relation = self.query_child.evaluate(context)
            query_set = FeatureSet.from_relation(
                query_relation, *_spatial_attrs(query_relation)
            )
            if self.query_fid not in query_set:
                raise AlgebraError(
                    f"k-nearest query feature {self.query_fid!r} is not in the "
                    "query relation"
                )
            query = query_set[self.query_fid]
        else:
            if self.query_fid not in feature_set:
                raise AlgebraError(
                    f"k-nearest query feature {self.query_fid!r} is not in the "
                    "input relation"
                )
            query = feature_set[self.query_fid]
        stats = KNearestStatistics()
        result = k_nearest(
            feature_set,
            query,
            self.k,
            self.fid_attr,
            self.rank_attr,
            statistics=stats,
            registry=context.registry,
        )
        context.metrics.index_node_accesses += stats.index_accesses
        context.metrics.count("k_nearest", len(result))
        return result

    def describe(self) -> str:
        return f"KNearest(query={self.query_fid}, k={self.k})"
