"""Spatial features and spatial constraint relations (section 4.2).

A *spatial constraint relation* has "the feature ID [as] the only
non-spatial attribute": one feature (a road, a land parcel, a hurricane
path) is stored as several constraint tuples — one convex part each —
sharing a feature ID.  :class:`Feature` is the whole-feature view (the unit
the section 4 operators work on); :class:`FeatureSet` converts between the
relation form and the feature form and maintains the R*-tree over feature
bounding boxes that Buffer-Join and k-Nearest search.
"""

from __future__ import annotations

import math
from typing import Iterable, Iterator, Mapping

from ..constraints import Conjunction
from ..errors import GeometryError, SchemaError
from ..indexing.mbr import MBR
from ..indexing.rstar import RStarTree
from ..model.relation import ConstraintRelation
from ..model.schema import Schema, constraint, relational
from ..model.tuples import HTuple
from ..model.types import DataType, Null
from ..obs import SPATIAL_REFINE_PRUNES, record
from .geometry import BoundingBox, Point
from .polygon import ConvexPolygon

#: A float axis-aligned box ``(min_x, min_y, max_x, max_y)`` — the
#: interval summary of one convex part, precomputed for cheap pruning.
FloatBox = tuple[float, float, float, float]


def _float_box(box: BoundingBox) -> FloatBox:
    return (float(box.min_x), float(box.min_y), float(box.max_x), float(box.max_y))


def box_mindist(a: FloatBox, b: FloatBox) -> float:
    """Euclidean minimum distance between two float boxes (0 on overlap).

    This lower-bounds the exact distance between any two shapes the boxes
    enclose — the same interval-pruning idea the solver layer applies to
    join pairs, here applied to spatial refinement candidates."""
    dx = max(b[0] - a[2], a[0] - b[2], 0.0)
    dy = max(b[1] - a[3], a[1] - b[3], 0.0)
    return math.hypot(dx, dy)


class Feature:
    """A named spatial feature: a union of convex parts."""

    __slots__ = ("fid", "parts", "_part_boxes", "_bbox", "_rational_bbox")

    def __init__(self, fid: str, parts: Iterable[ConvexPolygon]):
        if not fid or not isinstance(fid, str):
            raise GeometryError(f"feature ids must be non-empty strings, got {fid!r}")
        self.fid = fid
        self.parts: tuple[ConvexPolygon, ...] = tuple(parts)
        if not self.parts:
            raise GeometryError(f"feature {fid!r} has no parts")
        self._part_boxes: tuple[FloatBox, ...] | None = None
        self._bbox: FloatBox | None = None
        self._rational_bbox: BoundingBox | None = None

    def __setattr__(self, name: str, value: object) -> None:
        # Invalidate the cached boxes if the parts are ever reassigned, so
        # the caches can never serve boxes of a geometry that changed.
        object.__setattr__(self, name, value)
        if name == "parts":
            object.__setattr__(self, "_part_boxes", None)
            object.__setattr__(self, "_bbox", None)
            object.__setattr__(self, "_rational_bbox", None)

    def bounding_box(self) -> BoundingBox:
        """The exact rational bounding box of the whole feature (computed
        once; Buffer-Join consults it for every outer feature and the
        R*-tree build for every insert)."""
        box = self._rational_bbox
        if box is None:
            box = self.parts[0].bounding_box()
            for part in self.parts[1:]:
                box = box.union(part.bounding_box())
            self._rational_bbox = box
        return box

    def part_boxes(self) -> tuple[FloatBox, ...]:
        """Float bounding boxes of the convex parts (computed once)."""
        if self._part_boxes is None:
            self._part_boxes = tuple(
                _float_box(part.bounding_box()) for part in self.parts
            )
        return self._part_boxes

    def float_bbox(self) -> FloatBox:
        """The whole feature's float bounding box (computed once)."""
        if self._bbox is None:
            boxes = self.part_boxes()
            self._bbox = (
                min(b[0] for b in boxes),
                min(b[1] for b in boxes),
                max(b[2] for b in boxes),
                max(b[3] for b in boxes),
            )
        return self._bbox

    def contains_point(self, point: Point) -> bool:
        return any(part.contains_point(point) for part in self.parts)

    def intersects(self, other: "Feature") -> bool:
        return any(
            mine.intersects(theirs) for mine in self.parts for theirs in other.parts
        )

    def distance(self, other: "Feature", cutoff: float | None = None) -> float:
        """Euclidean minimum distance between the two features (0 when they
        touch).

        Convex-part pairs whose bounding boxes are already further apart
        than the best distance found so far are skipped (their box
        distance lower-bounds their exact distance).  With ``cutoff``,
        pairs provably further apart than ``cutoff`` are skipped too: the
        result is then exact whenever it is ``<= cutoff`` and otherwise
        only guaranteed to exceed ``cutoff`` — sufficient for the
        threshold comparisons Buffer-Join and k-Nearest make, and far
        cheaper than the full exact distance.  Skipped pairs are recorded
        as ``spatial.refine.prunes``.
        """
        best = math.inf
        pruned = 0
        my_boxes = self.part_boxes()
        their_boxes = other.part_boxes()
        for mine, mbox in zip(self.parts, my_boxes):
            for theirs, tbox in zip(other.parts, their_boxes):
                lower = box_mindist(mbox, tbox)
                if lower >= best or (cutoff is not None and lower > cutoff):
                    pruned += 1
                    continue
                exact = mine.distance(theirs)
                if exact < best:
                    best = exact
            if best == 0.0:
                break  # the features touch; no pair can do better
        if pruned:
            record(SPATIAL_REFINE_PRUNES, pruned)
        return best

    def __repr__(self) -> str:
        return f"<Feature {self.fid}: {len(self.parts)} convex parts>"


def default_spatial_schema(fid_attr: str = "fid", x: str = "x", y: str = "y") -> Schema:
    """The canonical spatial constraint relation schema of section 4.2."""
    return Schema([relational(fid_attr), constraint(x), constraint(y)])


class FeatureSet:
    """A collection of features with relation ⇄ feature conversion and an
    R*-tree over feature bounding boxes."""

    def __init__(
        self,
        features: Iterable[Feature],
        fid_attr: str = "fid",
        x: str = "x",
        y: str = "y",
    ):
        self.fid_attr = fid_attr
        self.x = x
        self.y = y
        self._features: dict[str, Feature] = {}
        for feature in features:
            if feature.fid in self._features:
                raise GeometryError(f"duplicate feature id {feature.fid!r}")
            self._features[feature.fid] = feature
        self._index: RStarTree | None = None

    # -- conversion ----------------------------------------------------------

    @classmethod
    def from_relation(
        cls,
        relation: ConstraintRelation,
        fid_attr: str = "fid",
        x: str = "x",
        y: str = "y",
    ) -> "FeatureSet":
        """Group tuples by feature ID and enumerate each tuple's convex
        part.  The relation must have ``fid_attr`` as a string relational
        attribute and ``x``/``y`` as constraint attributes; this is the
        costly constraint→geometry conversion of section 6.2."""
        schema = relation.schema
        fid_def = schema[fid_attr]
        if not fid_def.is_relational or fid_def.data_type is not DataType.STRING:
            raise SchemaError(f"{fid_attr!r} must be a string relational attribute")
        for spatial in (x, y):
            if not schema[spatial].is_constraint:
                raise SchemaError(f"{spatial!r} must be a constraint attribute")
        grouped: dict[str, list[ConvexPolygon]] = {}
        for t in relation:
            fid = t.value(fid_attr)
            if isinstance(fid, Null):
                raise SchemaError("a spatial tuple has a NULL feature id")
            polygon = ConvexPolygon.from_conjunction(t.formula.project((x, y)), x, y)
            grouped.setdefault(fid, []).append(polygon)
        return cls(
            (Feature(fid, parts) for fid, parts in grouped.items()),
            fid_attr=fid_attr,
            x=x,
            y=y,
        )

    def to_relation(self, name: str | None = None) -> ConstraintRelation:
        """The spatial constraint relation form: one tuple per convex part
        (the geometry→constraint conversion)."""
        schema = default_spatial_schema(self.fid_attr, self.x, self.y)
        tuples = []
        for feature in self:
            for part in feature.parts:
                formula: Conjunction = part.to_conjunction(self.x, self.y)
                tuples.append(HTuple(schema, {self.fid_attr: feature.fid}, formula))
        return ConstraintRelation(schema, tuples, name)

    # -- access ----------------------------------------------------------------

    def __iter__(self) -> Iterator[Feature]:
        return iter(self._features.values())

    def __len__(self) -> int:
        return len(self._features)

    def __contains__(self, fid: object) -> bool:
        return fid in self._features

    def __getitem__(self, fid: str) -> Feature:
        try:
            return self._features[fid]
        except KeyError:
            raise GeometryError(f"no feature named {fid!r}") from None

    @property
    def features(self) -> Mapping[str, Feature]:
        return dict(self._features)

    # -- indexing ----------------------------------------------------------------

    def index(self) -> RStarTree:
        """The (lazily built) R*-tree over feature bounding boxes; payloads
        are feature ids."""
        if self._index is None:
            tree = RStarTree(dimensions=2, max_entries=16)
            for feature in self:
                box = feature.bounding_box()
                tree.insert(
                    MBR(
                        (float(box.min_x), float(box.min_y)),
                        (float(box.max_x), float(box.max_y)),
                    ),
                    feature.fid,
                )
            self._index = tree
        return self._index

    def feature_mbr(self, fid: str) -> MBR:
        box = self[fid].bounding_box()
        return MBR(
            (float(box.min_x), float(box.min_y)), (float(box.max_x), float(box.max_y))
        )

    def __repr__(self) -> str:
        return f"<FeatureSet: {len(self)} features over ({self.x}, {self.y})>"
