"""Spatial features and spatial constraint relations (section 4.2).

A *spatial constraint relation* has "the feature ID [as] the only
non-spatial attribute": one feature (a road, a land parcel, a hurricane
path) is stored as several constraint tuples — one convex part each —
sharing a feature ID.  :class:`Feature` is the whole-feature view (the unit
the section 4 operators work on); :class:`FeatureSet` converts between the
relation form and the feature form and maintains the R*-tree over feature
bounding boxes that Buffer-Join and k-Nearest search.
"""

from __future__ import annotations

import math
from typing import Iterable, Iterator, Mapping

from ..constraints import Conjunction
from ..errors import GeometryError, SchemaError
from ..exec import columnar as _cx
from ..indexing.mbr import MBR
from ..indexing.rstar import RStarTree
from ..model.relation import ConstraintRelation
from ..model.schema import Schema, constraint, relational
from ..model.tuples import HTuple
from ..model.types import DataType, Null
from ..obs import (
    COLUMNAR_BATCHES,
    COLUMNAR_FALLBACK,
    COLUMNAR_FILTERED,
    SPATIAL_REFINE_PRUNES,
    record,
)
from ..rational import float_down, float_up
from .geometry import BoundingBox, Point
from .polygon import ConvexPolygon

try:
    import numpy as _np
except ImportError:  # pragma: no cover - the CI image always has numpy
    _np = None  # type: ignore[assignment]

#: A float axis-aligned box ``(min_x, min_y, max_x, max_y)`` — the
#: interval summary of one convex part, precomputed for cheap pruning.
FloatBox = tuple[float, float, float, float]


def _float_box(box: BoundingBox) -> FloatBox:
    # Widened (outward) rounding: the float box must *contain* the exact
    # rational box, so a box-distance prune computed on floats can never
    # discard a geometrically qualifying pair.
    return (
        float_down(box.min_x),
        float_down(box.min_y),
        float_up(box.max_x),
        float_up(box.max_y),
    )


def box_mindist(a: FloatBox, b: FloatBox) -> float:
    """Euclidean minimum distance between two float boxes (0 on overlap).

    This lower-bounds the exact distance between any two shapes the boxes
    enclose — the same interval-pruning idea the solver layer applies to
    join pairs, here applied to spatial refinement candidates."""
    dx = max(b[0] - a[2], a[0] - b[2], 0.0)
    dy = max(b[1] - a[3], a[1] - b[3], 0.0)
    return math.hypot(dx, dy)


def box_mindist_sq(a: FloatBox, b: FloatBox) -> float:
    """Squared box minimum distance.  The refinement prunes compare in
    squared space (against a squared threshold/best) so the scalar loop
    uses only ``max``/``*``/``+`` — operations the vectorized batch kernel
    (:func:`repro.exec.columnar.box_mindist_sq_batch`) reproduces with
    bit-identical IEEE semantics, unlike ``math.hypot``."""
    dx = max(b[0] - a[2], a[0] - b[2], 0.0)
    dy = max(b[1] - a[3], a[1] - b[3], 0.0)
    return dx * dx + dy * dy


class Feature:
    """A named spatial feature: a union of convex parts."""

    __slots__ = ("fid", "parts", "_part_boxes", "_part_arrays", "_bbox", "_rational_bbox")

    def __init__(self, fid: str, parts: Iterable[ConvexPolygon]):
        if not fid or not isinstance(fid, str):
            raise GeometryError(f"feature ids must be non-empty strings, got {fid!r}")
        self.fid = fid
        self.parts: tuple[ConvexPolygon, ...] = tuple(parts)
        if not self.parts:
            raise GeometryError(f"feature {fid!r} has no parts")
        self._part_boxes: tuple[FloatBox, ...] | None = None
        self._part_arrays = None
        self._bbox: FloatBox | None = None
        self._rational_bbox: BoundingBox | None = None

    def __setattr__(self, name: str, value: object) -> None:
        # Invalidate the cached boxes if the parts are ever reassigned, so
        # the caches can never serve boxes of a geometry that changed.
        object.__setattr__(self, name, value)
        if name == "parts":
            object.__setattr__(self, "_part_boxes", None)
            object.__setattr__(self, "_part_arrays", None)
            object.__setattr__(self, "_bbox", None)
            object.__setattr__(self, "_rational_bbox", None)

    def bounding_box(self) -> BoundingBox:
        """The exact rational bounding box of the whole feature (computed
        once; Buffer-Join consults it for every outer feature and the
        R*-tree build for every insert)."""
        box = self._rational_bbox
        if box is None:
            box = self.parts[0].bounding_box()
            for part in self.parts[1:]:
                box = box.union(part.bounding_box())
            self._rational_bbox = box
        return box

    def part_boxes(self) -> tuple[FloatBox, ...]:
        """Float bounding boxes of the convex parts (computed once)."""
        if self._part_boxes is None:
            self._part_boxes = tuple(
                _float_box(part.bounding_box()) for part in self.parts
            )
        return self._part_boxes

    def part_box_arrays(self):
        """The part boxes as cached ``(n, 2)`` lower/upper corner arrays —
        the columnar form the vectorized distance kernel broadcasts
        against.  Requires numpy (callers gate on availability)."""
        arrays = self._part_arrays
        if arrays is None:
            boxes = _np.array(self.part_boxes(), dtype=float).reshape(-1, 4)
            arrays = self._part_arrays = (
                _np.ascontiguousarray(boxes[:, :2]),
                _np.ascontiguousarray(boxes[:, 2:]),
            )
        return arrays

    def float_bbox(self) -> FloatBox:
        """The whole feature's float bounding box (computed once)."""
        if self._bbox is None:
            boxes = self.part_boxes()
            self._bbox = (
                min(b[0] for b in boxes),
                min(b[1] for b in boxes),
                max(b[2] for b in boxes),
                max(b[3] for b in boxes),
            )
        return self._bbox

    def contains_point(self, point: Point) -> bool:
        return any(part.contains_point(point) for part in self.parts)

    def intersects(self, other: "Feature") -> bool:
        return any(
            mine.intersects(theirs) for mine in self.parts for theirs in other.parts
        )

    def distance(self, other: "Feature", cutoff: float | None = None) -> float:
        """Euclidean minimum distance between the two features (0 when they
        touch).

        Convex-part pairs whose bounding boxes are already further apart
        than the best distance found so far are skipped (their box
        distance lower-bounds their exact distance).  With ``cutoff``,
        pairs provably further apart than ``cutoff`` are skipped too: the
        result is then exact whenever it is ``<= cutoff`` and otherwise
        only guaranteed to exceed ``cutoff`` — sufficient for the
        threshold comparisons Buffer-Join and k-Nearest make, and far
        cheaper than the full exact distance.  Skipped pairs are recorded
        as ``spatial.refine.prunes``.

        Prunes compare in *squared* space so the box test is pure
        ``max``/``*``/``+``/compare; with the columnar fast path active
        and a large enough part-pair matrix, the box tests run as one
        vectorized batch (:meth:`_distance_columnar`) that makes the
        identical prune decisions in the identical order — same return
        value, same prune counters.
        """
        if (
            _np is not None
            and _cx.columnar_active()
            and len(self.parts) * len(other.parts) >= _cx.MIN_BATCH
        ):
            return self._distance_columnar(other, cutoff)
        best = math.inf
        best_sq = math.inf
        cutoff_sq = None if cutoff is None else cutoff * cutoff
        pruned = 0
        my_boxes = self.part_boxes()
        their_boxes = other.part_boxes()
        for mine, mbox in zip(self.parts, my_boxes):
            for theirs, tbox in zip(other.parts, their_boxes):
                lower_sq = box_mindist_sq(mbox, tbox)
                if lower_sq >= best_sq or (cutoff_sq is not None and lower_sq > cutoff_sq):
                    pruned += 1
                    continue
                exact = mine.distance(theirs)
                if exact < best:
                    best = exact
                    best_sq = best * best
            if best == 0.0:
                break  # the features touch; no pair can do better
        if pruned:
            record(SPATIAL_REFINE_PRUNES, pruned)
        return best

    def _distance_columnar(self, other: "Feature", cutoff: float | None) -> float:
        """The vectorized arm of :meth:`distance`.

        One ``box_mindist_sq_batch`` call per row of the part-pair matrix
        replaces the per-pair Python box tests; candidates surviving the
        row-entry mask are re-checked against the *evolving* best before
        their exact distance runs.  Because the batch kernel is
        elementwise-identical to :func:`box_mindist_sq` and the re-check
        reproduces the scalar loop's visit-time test, the sequence of
        exact-distance evaluations — and hence the result and the
        ``spatial.refine.prunes`` count — is identical to the scalar loop.
        """
        best = math.inf
        best_sq = math.inf
        cutoff_sq = None if cutoff is None else cutoff * cutoff
        pruned = 0
        candidates = 0
        their_lowers, their_uppers = other.part_box_arrays()
        my_boxes = self.part_boxes()
        n_theirs = len(other.parts)
        for mine, mbox in zip(self.parts, my_boxes):
            row = _cx.box_mindist_sq_batch(mbox, their_lowers, their_uppers)
            keep = row < best_sq
            if cutoff_sq is not None:
                keep &= row <= cutoff_sq
            indices = _np.nonzero(keep)[0]
            pruned += n_theirs - len(indices)
            candidates += len(indices)
            for j in indices:
                lower_sq = row[j]
                # The mask used best_sq at row start; best may have
                # shrunk since — re-apply the scalar loop's visit-time
                # test so prune decisions stay identical.
                if lower_sq >= best_sq:
                    pruned += 1
                    candidates -= 1
                    continue
                exact = mine.distance(other.parts[j])
                if exact < best:
                    best = exact
                    best_sq = best * best
            if best == 0.0:
                break  # the features touch; no pair can do better
        record(COLUMNAR_BATCHES)
        record(COLUMNAR_FILTERED, pruned)
        record(COLUMNAR_FALLBACK, candidates)
        if pruned:
            record(SPATIAL_REFINE_PRUNES, pruned)
        return best

    def __repr__(self) -> str:
        return f"<Feature {self.fid}: {len(self.parts)} convex parts>"


def default_spatial_schema(fid_attr: str = "fid", x: str = "x", y: str = "y") -> Schema:
    """The canonical spatial constraint relation schema of section 4.2."""
    return Schema([relational(fid_attr), constraint(x), constraint(y)])


class FeatureSet:
    """A collection of features with relation ⇄ feature conversion and an
    R*-tree over feature bounding boxes."""

    def __init__(
        self,
        features: Iterable[Feature],
        fid_attr: str = "fid",
        x: str = "x",
        y: str = "y",
    ):
        self.fid_attr = fid_attr
        self.x = x
        self.y = y
        self._features: dict[str, Feature] = {}
        for feature in features:
            if feature.fid in self._features:
                raise GeometryError(f"duplicate feature id {feature.fid!r}")
            self._features[feature.fid] = feature
        self._index: RStarTree | None = None
        self._columnar_boxes = None

    # -- conversion ----------------------------------------------------------

    @classmethod
    def from_relation(
        cls,
        relation: ConstraintRelation,
        fid_attr: str = "fid",
        x: str = "x",
        y: str = "y",
    ) -> "FeatureSet":
        """Group tuples by feature ID and enumerate each tuple's convex
        part.  The relation must have ``fid_attr`` as a string relational
        attribute and ``x``/``y`` as constraint attributes; this is the
        costly constraint→geometry conversion of section 6.2."""
        schema = relation.schema
        fid_def = schema[fid_attr]
        if not fid_def.is_relational or fid_def.data_type is not DataType.STRING:
            raise SchemaError(f"{fid_attr!r} must be a string relational attribute")
        for spatial in (x, y):
            if not schema[spatial].is_constraint:
                raise SchemaError(f"{spatial!r} must be a constraint attribute")
        grouped: dict[str, list[ConvexPolygon]] = {}
        for t in relation:
            fid = t.value(fid_attr)
            if isinstance(fid, Null):
                raise SchemaError("a spatial tuple has a NULL feature id")
            polygon = ConvexPolygon.from_conjunction(t.formula.project((x, y)), x, y)
            grouped.setdefault(fid, []).append(polygon)
        return cls(
            (Feature(fid, parts) for fid, parts in grouped.items()),
            fid_attr=fid_attr,
            x=x,
            y=y,
        )

    def to_relation(self, name: str | None = None) -> ConstraintRelation:
        """The spatial constraint relation form: one tuple per convex part
        (the geometry→constraint conversion)."""
        schema = default_spatial_schema(self.fid_attr, self.x, self.y)
        tuples = []
        for feature in self:
            for part in feature.parts:
                formula: Conjunction = part.to_conjunction(self.x, self.y)
                tuples.append(HTuple(schema, {self.fid_attr: feature.fid}, formula))
        return ConstraintRelation(schema, tuples, name)

    # -- access ----------------------------------------------------------------

    def __iter__(self) -> Iterator[Feature]:
        return iter(self._features.values())

    def __len__(self) -> int:
        return len(self._features)

    def __contains__(self, fid: object) -> bool:
        return fid in self._features

    def __getitem__(self, fid: str) -> Feature:
        try:
            return self._features[fid]
        except KeyError:
            raise GeometryError(f"no feature named {fid!r}") from None

    @property
    def features(self) -> Mapping[str, Feature]:
        return dict(self._features)

    # -- indexing ----------------------------------------------------------------

    def index(self) -> RStarTree:
        """The (lazily built) R*-tree over feature bounding boxes; payloads
        are feature ids."""
        if self._index is None:
            tree = RStarTree(dimensions=2, max_entries=16)
            for feature in self:
                fb = feature.float_bbox()  # widened: contains the exact box
                tree.insert(MBR((fb[0], fb[1]), (fb[2], fb[3])), feature.fid)
            self._index = tree
        return self._index

    def feature_mbr(self, fid: str) -> MBR:
        fb = self[fid].float_bbox()
        return MBR((fb[0], fb[1]), (fb[2], fb[3]))

    def columnar_boxes(self):
        """The whole-feature float bounding boxes in columnar form:
        ``(fid -> row index, (n, 2) lower corners, (n, 2) upper corners)``,
        cached — Buffer-Join's batched candidate prune gathers candidate
        rows from these arrays instead of touching each feature object.
        Requires numpy (callers gate on availability)."""
        cached = self._columnar_boxes
        if cached is None:
            fids = list(self._features)
            boxes = _np.array(
                [self._features[fid].float_bbox() for fid in fids], dtype=float
            ).reshape(-1, 4)
            cached = self._columnar_boxes = (
                {fid: i for i, fid in enumerate(fids)},
                _np.ascontiguousarray(boxes[:, :2]),
                _np.ascontiguousarray(boxes[:, 2:]),
            )
        return cached

    def __repr__(self) -> str:
        return f"<FeatureSet: {len(self)} features over ({self.x}, {self.y})>"
