"""The metrics registry: named counters/timers with scoped attribution.

Every access-counting producer in the system (the R*-tree, the buffer
pool, the constraint solvers, the plan evaluator) reports through a
:class:`MetricsRegistry` instead of keeping private tallies that consumers
delta-read.  Two capture mechanisms sit on top of the flat counters:

* :meth:`MetricsRegistry.scope` — a context manager capturing every
  increment made while it is open, used for per-operator attribution
  (replacing the ``before = tree.search_accesses`` delta pattern, which
  misattributes work as soon as two operators share an index);
* :meth:`MetricsRegistry.trace` — a :class:`~repro.obs.span.Span`-producing
  scope that also records wall-clock time and nests into a tree, used for
  ``EXPLAIN ANALYZE``-style per-plan-node reporting.

Both push the registry onto the *active registry* stack, so producers that
cannot be handed a registry explicitly (the elimination and simplex modules
are plain functions) call :func:`record` and their work is attributed to
whichever registry is currently evaluating.  A module-level default registry
sits at the bottom of the stack so standalone calls are still counted
somewhere.

The active stack is **thread-local**: the parallel execution engine's
thread-pool fallback runs one task per worker thread, each activating its
own task registry, and a shared stack would interleave their pushes and
misattribute work.  A single :class:`MetricsRegistry` instance is still not
safe for *concurrent mutation* from multiple threads — the engine gives
every worker task a fresh registry and merges the snapshots afterwards
(:meth:`MetricsRegistry.merge_snapshot`).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Iterator, Mapping

from .._concurrency import ThreadLocalStack
from .span import Span

# -- canonical counter names --------------------------------------------------

#: Logical index node accesses — the paper's Figures 4–5 y-axis unit.
LOGICAL_NODE_ACCESSES = "index.node_accesses.logical"
#: Physical (simulated disk) reads: buffer-pool misses when a pool is
#: attached, otherwise equal to the logical count.
PHYSICAL_NODE_ACCESSES = "index.node_accesses.physical"
#: Node writes accumulated by insert/delete (write I/O model).
WRITE_NODE_ACCESSES = "index.node_accesses.write"

POOL_REQUESTS = "buffer_pool.requests"
POOL_HITS = "buffer_pool.hits"
POOL_MISSES = "buffer_pool.misses"
POOL_EVICTIONS = "buffer_pool.evictions"

ELIMINATE_CALLS = "solver.eliminate_calls"
FOURIER_MOTZKIN_STEPS = "solver.fourier_motzkin_steps"
#: Full decision-procedure satisfiability solves (Fourier–Motzkin or
#: simplex).  Requests answered by the layered fast paths (interval
#: propagation, memo cache) deliberately do *not* count here, so the gap
#: between ``solver.requests`` and this counter is the solver work saved.
SATISFIABILITY_CHECKS = "solver.satisfiability_checks"
SIMPLEX_CALLS = "solver.simplex_calls"

#: Satisfiability requests entering the layered solver front-end
#: (:mod:`repro.constraints.solver`).
SOLVER_REQUESTS = "solver.requests"
#: Requests answered from the memoized satisfiability cache.
SOLVER_CACHE_HITS = "solver.cache.hits"
#: Requests that missed the cache and ran a full decision procedure.
SOLVER_CACHE_MISSES = "solver.cache.misses"
#: Systems decided *unsatisfiable* by interval propagation alone
#: (includes join-pair prunes, which are also counted separately below).
SOLVER_INTERVAL_PRUNES = "solver.interval.prunes"
#: Pure-box systems decided *satisfiable* by interval propagation alone.
SOLVER_BOX_DECIDED = "solver.interval.box_decided"
#: Join tuple pairs rejected by comparing the two sides' interval
#: summaries, without ever building or solving the combined conjunction.
SOLVER_JOIN_PRUNES = "solver.interval.join_prunes"
#: Full checks the adaptive dispatcher routed to the simplex backend.
SOLVER_SIMPLEX_ROUTED = "solver.dispatch.simplex"
#: Full checks the adaptive dispatcher routed to Fourier–Motzkin.
SOLVER_FM_ROUTED = "solver.dispatch.fourier_motzkin"

#: Spatial refinement work skipped via bounding-box distance lower bounds
#: (whole candidates in Buffer-Join, convex part pairs in exact distance).
SPATIAL_REFINE_PRUNES = "spatial.refine.prunes"

#: Governor budget consumption, recorded only while a budget is active so
#: ``EXPLAIN ANALYZE`` can label per-node charges.  The IO budget is
#: deliberately *not* mirrored here: its charge sites (R*-tree node
#: visits, heap page reads) are the hot path, and the existing
#: ``index.node_accesses.*`` counters already expose the same quantity.
GOVERNOR_SOLVER_STEPS = "governor.charged.solver_steps"
GOVERNOR_DNF_CLAUSES = "governor.charged.dnf_clauses"
GOVERNOR_OUTPUT_TUPLES = "governor.charged.output_tuples"
#: Producer loops cut short by partial-mode graceful degradation.
GOVERNOR_TRUNCATIONS = "governor.truncations"

#: Transient storage failures retried by the bounded-backoff helper.
STORAGE_RETRIES = "storage.retries"
#: Faults injected by an active :class:`~repro.governor.FaultPlan`.
STORAGE_FAULTS_INJECTED = "storage.faults_injected"

#: Total tuples produced across all plan operators.
TUPLES_PRODUCED = "plan.tuples_produced"

#: Parallel execution engine: morsel dispatches (one per operator call
#: that went parallel), morsels shipped, and auto-mode dispatches that
#: fell back from the process pool to threads (unpicklable envelope or a
#: broken pool).
EXEC_DISPATCHES = "exec.dispatches"
EXEC_MORSELS = "exec.morsels"
EXEC_THREAD_FALLBACKS = "exec.thread_fallbacks"

#: Columnar fast path (:mod:`repro.exec.columnar`): vectorized batches
#: evaluated, rows/pairs eliminated by the float filter, candidates that
#: survived it and went to the exact fallback, and dispatches where the
#: probe bypassed the fast path (no numpy, batch too small, or no
#: vectorizable predicate bounds).  ``hit rate = filtered / (filtered +
#: fallback)``.
COLUMNAR_BATCHES = "columnar.batches"
COLUMNAR_FILTERED = "columnar.filtered"
COLUMNAR_FALLBACK = "columnar.fallback"
COLUMNAR_BYPASSED = "columnar.bypassed"

#: Query server (:mod:`repro.server`): request/reply accounting.  Per-query
#: engine counters (solver, IO, governor charges) are merged into the
#: server registry from each tenant session after every request, so
#: server-side counters and ``EXPLAIN ANALYZE`` share one pipeline.
SERVER_REQUESTS = "server.requests"
SERVER_REPLIES_OK = "server.replies.ok"
SERVER_REPLIES_ERROR = "server.replies.error"
#: Requests refused by queue-depth admission control (429-style reply).
SERVER_SHED = "server.shed"
#: Budget exhaustion surfaced to a client as a structured 429-style reply.
SERVER_EXHAUSTED = "server.exhausted"
#: Connections that dropped before their in-flight reply could be written.
SERVER_DISCONNECTS = "server.disconnects"
#: In-flight queries completed during graceful shutdown draining.
SERVER_DRAINED = "server.drained"
#: Idle tenant sessions closed by the TTL sweep (``ServerConfig.session_ttl``).
SERVER_EVICTED = "server.evicted"
#: Hot reloads completed (``reload`` op / SIGHUP): the snapshot was swapped.
SERVER_RELOADS = "server.reload.count"
#: Hot reloads that failed (bad file, corruption); the old snapshot stays.
SERVER_RELOAD_ERRORS = "server.reload.errors"
#: Tenant sessions retired by a reload (closed once their reader drained).
SERVER_RELOAD_RETIRED = "server.reload.retired_sessions"

#: Write-ahead log (:mod:`repro.storage.wal`): the durable write path.
#: One record appended to the log (checksummed, length-prefixed).
WAL_APPENDS = "wal.appends"
#: Transactions made durable (commit record written and fsynced).
WAL_COMMITS = "wal.commits"
#: ``fsync`` barriers paid by the log (the commit-latency driver).
WAL_FSYNCS = "wal.fsyncs"
#: Records replayed into the database image by recovery-on-open.
WAL_REPLAYED = "wal.replayed_records"
#: Recovery-on-open passes that found a non-empty log to replay.
WAL_RECOVERIES = "wal.recoveries"
#: Torn-tail bytes truncated by recovery (a crash mid-append).
WAL_TRUNCATED_BYTES = "wal.truncated_bytes"
#: Checkpoints: the image was atomically rewritten and the log reset.
WAL_CHECKPOINTS = "wal.checkpoints"


class Counter:
    """A named integer metric."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def add(self, n: int = 1) -> None:
        self.value += n

    def reset(self) -> None:
        self.value = 0

    def __repr__(self) -> str:
        return f"<Counter {self.name}={self.value}>"


class Timer:
    """Accumulated wall-clock seconds over a named region."""

    __slots__ = ("name", "total_seconds", "calls")

    def __init__(self, name: str):
        self.name = name
        self.total_seconds = 0.0
        self.calls = 0

    def add(self, seconds: float) -> None:
        self.total_seconds += seconds
        self.calls += 1

    @property
    def mean_seconds(self) -> float:
        return self.total_seconds / self.calls if self.calls else 0.0

    def reset(self) -> None:
        self.total_seconds = 0.0
        self.calls = 0

    def __repr__(self) -> str:
        return f"<Timer {self.name}={self.total_seconds:.6f}s/{self.calls}>"


class MetricsRegistry:
    """Named counters and timers plus scoped/span attribution."""

    def __init__(self):
        self._counters: dict[str, Counter] = {}
        self._timers: dict[str, Timer] = {}
        self._frames: list[dict[str, int]] = []
        self._span_stack: list[Span] = []
        #: The most recently completed *root* span (set when the outermost
        #: :meth:`trace` exits); ``explain_analyze`` reads it.
        self.last_trace: Span | None = None

    # -- counters / timers --------------------------------------------------

    def counter(self, name: str) -> Counter:
        counter = self._counters.get(name)
        if counter is None:
            counter = self._counters[name] = Counter(name)
        return counter

    def timer(self, name: str) -> Timer:
        timer = self._timers.get(name)
        if timer is None:
            timer = self._timers[name] = Timer(name)
        return timer

    def add(self, name: str, n: int = 1) -> None:
        """Increment a counter, attributing to every open scope/span."""
        self.counter(name).add(n)
        for frame in self._frames:
            frame[name] = frame.get(name, 0) + n

    def value(self, name: str) -> int:
        counter = self._counters.get(name)
        return counter.value if counter is not None else 0

    def _drop_frame(self, frame: dict[str, int]) -> None:
        # Remove by identity, not list.remove's equality — nested frames
        # with equal contents (e.g. two empty dicts) would pop the wrong one.
        for i in range(len(self._frames) - 1, -1, -1):
            if self._frames[i] is frame:
                del self._frames[i]
                return

    # -- capture ------------------------------------------------------------

    @contextmanager
    def scope(self, label: str = "") -> Iterator[dict[str, int]]:
        """Capture the counter increments made while the scope is open.

        Yields the capture dict (counter name → delta).  Scopes nest:
        increments land in every open scope, so an operator's scope sees
        its own work even while an enclosing statement scope is open.
        """
        del label  # scopes are anonymous captures; label aids call sites
        frame: dict[str, int] = {}
        self._frames.append(frame)
        _STACK.push(self)
        try:
            yield frame
        finally:
            _STACK.pop()
            self._drop_frame(frame)

    @contextmanager
    def trace(self, name: str, kind: str = "") -> Iterator[Span]:
        """A timed, counter-capturing span; nests into a span tree."""
        span = Span(name=name, kind=kind)
        parent = self._span_stack[-1] if self._span_stack else None
        self._span_stack.append(span)
        self._frames.append(span.counters)
        start = time.perf_counter()
        _STACK.push(self)
        try:
            yield span
        finally:
            span.elapsed = time.perf_counter() - start
            _STACK.pop()
            self._drop_frame(span.counters)
            self._span_stack.pop()
            if parent is not None:
                parent.children.append(span)
            else:
                self.last_trace = span

    @contextmanager
    def timed(self, name: str) -> Iterator[Timer]:
        """Accumulate the block's wall-clock time into ``timer(name)``."""
        timer = self.timer(name)
        start = time.perf_counter()
        try:
            yield timer
        finally:
            timer.add(time.perf_counter() - start)

    @contextmanager
    def activate(self) -> Iterator["MetricsRegistry"]:
        """Make this the registry :func:`record` reports to."""
        _STACK.push(self)
        try:
            yield self
        finally:
            _STACK.pop()

    # -- reporting -----------------------------------------------------------

    def snapshot(self) -> dict[str, float]:
        """All metric values by name (timers as ``<name>.seconds``)."""
        out: dict[str, float] = {
            name: counter.value for name, counter in sorted(self._counters.items())
        }
        for name, timer in sorted(self._timers.items()):
            out[f"{name}.seconds"] = timer.total_seconds
        return out

    def merge_snapshot(
        self,
        snapshot: Mapping[str, float],
        skip_prefixes: tuple[str, ...] = (),
    ) -> None:
        """Fold another registry's :meth:`snapshot` into this one.

        Counter values are added via :meth:`add`, so open scopes and spans
        capture the merged work and attribute it to the operator doing the
        merging — this is how worker-task registries from the parallel
        execution engine land in the session registry.  ``<name>.seconds``
        entries are folded into the matching timer.  ``skip_prefixes``
        drops counters the caller reconstructs itself (e.g. governor
        charge mirrors, which the post-merge budget reconciliation
        re-records at the parent).
        """
        for name, value in snapshot.items():
            if any(name.startswith(prefix) for prefix in skip_prefixes):
                continue
            if name.endswith(".seconds"):
                if value:
                    self.timer(name[: -len(".seconds")]).add(float(value))
            elif value:
                self.add(name, int(value))

    def reset(self) -> None:
        """Zero every counter and timer (open scopes/spans are unaffected:
        they capture deltas, not absolute values)."""
        for counter in self._counters.values():
            counter.reset()
        for timer in self._timers.values():
            timer.reset()

    def report(self) -> str:
        """A formatted metrics table (non-zero metrics only)."""
        rows = [
            (name, str(counter.value))
            for name, counter in sorted(self._counters.items())
            if counter.value
        ]
        rows.extend(
            (name, f"{timer.total_seconds * 1000:.3f}ms /{timer.calls}")
            for name, timer in sorted(self._timers.items())
            if timer.calls
        )
        if not rows:
            return "(no metrics recorded)"
        width = max(len(name) for name, _ in rows)
        return "\n".join(f"{name:<{width}}  {value}" for name, value in rows)

    def __repr__(self) -> str:
        return (
            f"<MetricsRegistry {len(self._counters)} counters, "
            f"{len(self._timers)} timers>"
        )


# -- active-registry stack -----------------------------------------------------


#: Per-thread active-registry stack: thread-local so the execution
#: engine's thread-pool fallback can give each worker thread its own
#: activation chain without interleaving.  Shares the
#: :class:`ThreadLocalStack` implementation with the budget, engine, and
#: columnar-mode stacks.
_STACK = ThreadLocalStack()
_DEFAULT = MetricsRegistry()


def default_registry() -> MetricsRegistry:
    """The process-wide fallback registry."""
    return _DEFAULT


def current_registry() -> MetricsRegistry:
    """The registry unbound producers report to right now."""
    stack = _STACK.items
    return stack[-1] if stack else _DEFAULT


def reset_active_registries() -> None:
    """Clear this thread's active-registry stack.

    Worker-pool plumbing: a forked worker process inherits the parent's
    stack contents (the fork clones the submitting thread), and a pooled
    worker thread may be reused across tasks.  Task envelopes call this
    before activating their own registry so inherited or leftover
    activations cannot absorb the task's metrics.
    """
    _STACK.clear()


def record(name: str, n: int = 1) -> None:
    """Increment ``name`` on the currently active registry.

    The escape hatch for producers that are plain functions (constraint
    elimination, simplex): when called during plan evaluation the active
    registry is the evaluating session's, so the work is attributed to the
    right query and captured by any open spans.
    """
    current_registry().add(name, n)
