"""Observability: the unified metrics/tracing layer.

Every counter the paper's experiments report — index node accesses
(logical vs physical), buffer-pool hits/misses/evictions, solver calls,
per-operator tuple counts and timings — flows through one
:class:`MetricsRegistry` instead of scattered per-object tallies.  See
:mod:`repro.obs.registry` for the design and
:mod:`repro.obs.span` for the ``EXPLAIN ANALYZE`` span tree.
"""

from .registry import (
    ELIMINATE_CALLS,
    FOURIER_MOTZKIN_STEPS,
    LOGICAL_NODE_ACCESSES,
    PHYSICAL_NODE_ACCESSES,
    POOL_EVICTIONS,
    POOL_HITS,
    POOL_MISSES,
    POOL_REQUESTS,
    SATISFIABILITY_CHECKS,
    SIMPLEX_CALLS,
    SOLVER_BOX_DECIDED,
    SOLVER_CACHE_HITS,
    SOLVER_CACHE_MISSES,
    SOLVER_FM_ROUTED,
    SOLVER_INTERVAL_PRUNES,
    SOLVER_JOIN_PRUNES,
    SOLVER_REQUESTS,
    SOLVER_SIMPLEX_ROUTED,
    SPATIAL_REFINE_PRUNES,
    TUPLES_PRODUCED,
    WRITE_NODE_ACCESSES,
    Counter,
    MetricsRegistry,
    Timer,
    current_registry,
    default_registry,
    record,
)
from .span import Span

__all__ = [
    "Counter",
    "ELIMINATE_CALLS",
    "FOURIER_MOTZKIN_STEPS",
    "LOGICAL_NODE_ACCESSES",
    "MetricsRegistry",
    "PHYSICAL_NODE_ACCESSES",
    "POOL_EVICTIONS",
    "POOL_HITS",
    "POOL_MISSES",
    "POOL_REQUESTS",
    "SATISFIABILITY_CHECKS",
    "SIMPLEX_CALLS",
    "SOLVER_BOX_DECIDED",
    "SOLVER_CACHE_HITS",
    "SOLVER_CACHE_MISSES",
    "SOLVER_FM_ROUTED",
    "SOLVER_INTERVAL_PRUNES",
    "SOLVER_JOIN_PRUNES",
    "SOLVER_REQUESTS",
    "SOLVER_SIMPLEX_ROUTED",
    "SPATIAL_REFINE_PRUNES",
    "Span",
    "TUPLES_PRODUCED",
    "Timer",
    "WRITE_NODE_ACCESSES",
    "current_registry",
    "default_registry",
    "record",
]
