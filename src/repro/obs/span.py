"""Span-style tracing for nested plan-node timing.

A :class:`Span` is one timed region — typically one plan operator's
``evaluate`` call — carrying the wall-clock time (``time.perf_counter``)
and every counter increment observed through the owning
:class:`~repro.obs.MetricsRegistry` while the span was open, plus its
child spans.  Counter capture is *inclusive*: whatever a child records is
also recorded by its ancestors, so ``span.get(name)`` answers "what did
this subtree cost" and :meth:`Span.exclusive` answers "what did this
operator itself cost".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence


@dataclass
class Span:
    """One traced region: name, kind, row count, time, counters, children."""

    name: str
    kind: str = ""
    #: Output cardinality of the traced operator (None when not applicable).
    rows: int | None = None
    #: Inclusive wall-clock seconds (children included).
    elapsed: float = 0.0
    #: Inclusive counter deltas observed while the span was open.
    counters: dict[str, int] = field(default_factory=dict)
    children: list["Span"] = field(default_factory=list)

    def get(self, counter: str, default: int = 0) -> int:
        """Inclusive value of ``counter`` over this span's subtree."""
        return self.counters.get(counter, default)

    def exclusive(self, counter: str) -> int:
        """This span's own share of ``counter``: inclusive minus children."""
        return self.get(counter) - sum(c.get(counter) for c in self.children)

    @property
    def elapsed_exclusive(self) -> float:
        """Wall-clock seconds spent in this span outside its children."""
        return self.elapsed - sum(c.elapsed for c in self.children)

    def walk(self) -> Iterator["Span"]:
        """This span and every descendant, pre-order."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, kind: str) -> list["Span"]:
        """All spans in the subtree whose ``kind`` matches."""
        return [s for s in self.walk() if s.kind == kind]

    def pretty(
        self,
        counters: Sequence[tuple[str, str]] = (),
        indent: int = 0,
        sparse: Sequence[tuple[str, str]] = (),
    ) -> str:
        """An annotated tree, one line per span.

        ``counters`` lists ``(label, counter name)`` pairs to print per
        node; counter values shown are *exclusive* (per-operator), while
        ``rows`` and time are the node's own output and inclusive time.
        ``sparse`` pairs render the same way but only when nonzero —
        right for counters most operators never touch (solver fast-path
        hits, spatial refinement prunes) that would otherwise pad every
        line with ``=0`` noise.
        """
        parts = [("  " * indent) + self.name]
        if self.rows is not None:
            parts.append(f"rows={self.rows}")
        for label, counter in counters:
            parts.append(f"{label}={self.exclusive(counter)}")
        for label, counter in sparse:
            value = self.exclusive(counter)
            if value:
                parts.append(f"{label}={value}")
        parts.append(f"time={self.elapsed * 1000:.3f}ms")
        lines = ["  ".join(parts)]
        for child in self.children:
            lines.append(child.pretty(counters, indent + 1, sparse))
        return "\n".join(lines)
