"""The static analyzer: run every registered rule over a query script.

The analyzer never evaluates a statement.  It walks a script in order,
maintaining an *environment* of what each name denotes — schema, sound
cardinality bounds, and (for base relations) the concrete relation for
statistics — exactly the way :class:`~repro.query.QuerySession` maintains
its workspace, so multi-step scripts analyze the same bindings they would
execute.

Per statement the pipeline is:

1. parse (a :class:`~repro.errors.ParseError` becomes ``CQA001`` and the
   analyzer moves on to the next line);
2. resolve source names (``CQA002``; unknown targets poison their
   dependents so one typo reports once, not once per use);
3. compute the output schema and sound bounds (schema violations become
   ``CQA003``);
4. compile to a plan where possible and run every rule in
   :func:`repro.analysis.rules.all_rules`;
5. bind the target for subsequent statements.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from ..errors import ParseError, QueryError, ReproError, SchemaError
from ..governor.budget import Budget
from ..model.database import Database
from ..model.relation import ConstraintRelation
from ..model.schema import Schema, relational
from ..model.types import DataType
from ..query.ast import (
    BufferJoinStmt,
    CrossStmt,
    DiffStmt,
    IntersectStmt,
    JoinStmt,
    KNearestStmt,
    ProjectStmt,
    RenameStmt,
    SelectStmt,
    Statement,
    StatementBody,
    UnionStmt,
)
from ..query.compiler import compile_statement
from ..query.lexer import split_statements
from ..query.parser import parse_statement
from .cardinality import (
    Bounds,
    difference_bounds,
    join_bounds,
    knearest_bounds,
    project_bounds,
    rename_bounds,
    select_bounds,
    union_bounds,
)
from .diagnostics import Diagnostic, Diagnostics, SourceSpan, diagnostic
from .rules import RelationInfo, StatementContext, all_rules

Environment = dict[str, RelationInfo]


def build_environment(
    relations: Mapping[str, ConstraintRelation] | Database,
) -> Environment:
    """An analysis environment where every name is a concrete relation."""
    names = list(relations)
    return {
        name: RelationInfo(
            schema=relations[name].schema,
            bounds=Bounds.of_relation(relations[name]),
            relation=relations[name],
        )
        for name in names
    }


def _sources(body: StatementBody) -> tuple[str, ...]:
    if isinstance(body, (SelectStmt, ProjectStmt, RenameStmt)):
        return (body.source,)
    if isinstance(body, (JoinStmt, IntersectStmt, CrossStmt, UnionStmt, DiffStmt, BufferJoinStmt)):
        return (body.left, body.right)
    if isinstance(body, KNearestStmt):
        if body.query_source is not None:
            return (body.source, body.query_source)
        return (body.source,)
    return ()


def _output_schema(body: StatementBody, env: Environment) -> Schema:
    """The statement's result schema (raises on schema violations)."""
    if isinstance(body, SelectStmt):
        return env[body.source].schema
    if isinstance(body, ProjectStmt):
        return env[body.source].schema.project(body.attributes)
    if isinstance(body, RenameStmt):
        return env[body.source].schema.rename(body.old, body.new)
    if isinstance(body, (JoinStmt, IntersectStmt, CrossStmt)):
        left = env[body.left].schema
        right = env[body.right].schema
        if isinstance(body, IntersectStmt):
            left.union_compatible(right)
        if isinstance(body, CrossStmt):
            shared = left.shared_names(right)
            if shared:
                raise SchemaError(
                    f"cross requires disjoint schemas; shared attributes {list(shared)}"
                )
        return left.join(right)
    if isinstance(body, (UnionStmt, DiffStmt)):
        left = env[body.left].schema
        left.union_compatible(env[body.right].schema)
        return left
    if isinstance(body, BufferJoinStmt):
        return Schema([relational(body.left_attr), relational(body.right_attr)])
    if isinstance(body, KNearestStmt):
        return Schema([relational("fid"), relational("rank", DataType.RATIONAL)])
    raise QueryError(f"unsupported statement body {body!r}")


def _result_bounds(body: StatementBody, env: Environment) -> Bounds:
    """Sound cardinality bounds for the statement's result."""
    if isinstance(body, SelectStmt):
        return select_bounds(env[body.source].bounds)
    if isinstance(body, ProjectStmt):
        return project_bounds(env[body.source].bounds)
    if isinstance(body, RenameStmt):
        return rename_bounds(env[body.source].bounds)
    if isinstance(body, (JoinStmt, IntersectStmt, CrossStmt, BufferJoinStmt)):
        return join_bounds(env[body.left].bounds, env[body.right].bounds)
    if isinstance(body, UnionStmt):
        return union_bounds(env[body.left].bounds, env[body.right].bounds)
    if isinstance(body, DiffStmt):
        return difference_bounds(env[body.left].bounds, env[body.right].bounds)
    if isinstance(body, KNearestStmt):
        return knearest_bounds(body.k)
    return Bounds(lo=0, hi=0)


class Analyzer:
    """A reusable analysis driver bound to an environment and a budget."""

    def __init__(self, env: Environment, budget: Budget | None = None) -> None:
        self._env = env
        self._budget = budget
        #: Targets whose statements failed to resolve; references to them
        #: are not re-reported as unknown relations.
        self._poisoned: set[str] = set()

    @property
    def environment(self) -> Environment:
        return self._env

    def analyze(self, statements: Iterable[Statement]) -> Diagnostics:
        found: list[Diagnostic] = []
        for statement in statements:
            found.extend(self.analyze_statement(statement))
        return Diagnostics(found)

    def analyze_statement(self, statement: Statement) -> list[Diagnostic]:
        """All diagnostics for one statement; binds its target on success."""
        body = statement.body
        span = getattr(body, "span", None)
        text = statement.text
        found: list[Diagnostic] = []

        missing = [s for s in _sources(body) if s not in self._env]
        if missing:
            for source in missing:
                if source in self._poisoned:
                    continue
                known = ", ".join(sorted(self._env)) or "(none)"
                found.append(
                    diagnostic(
                        "CQA002",
                        f"unknown relation {source!r}",
                        span=span,
                        statement=text,
                        hint=f"known relations: {known}",
                    )
                )
            self._poisoned.add(statement.target)
            return found

        try:
            schema = _output_schema(body, self._env)
        except ReproError as exc:
            found.append(
                diagnostic("CQA003", str(exc), span=span, statement=text)
            )
            self._poisoned.add(statement.target)
            return found

        bounds = _result_bounds(body, self._env)
        plan = None
        compile_error: ReproError | None = None
        try:
            plan = compile_statement(
                body, {name: info.schema for name, info in self._env.items()}
            )
        except ReproError as exc:
            compile_error = exc

        ctx = StatementContext(
            statement=statement,
            env=self._env,
            bounds=bounds,
            budget=self._budget,
            plan=plan,
        )
        for rule in all_rules():
            for diag in rule.run(ctx):
                found.append(diag.with_context(span, text))

        if compile_error is not None and not any(d.code == "CQA101" for d in found):
            # Condition-level violations the schema pass cannot see
            # (unknown attribute in a comparison, '!=' over rationals, …).
            # A CQA101 for the same statement subsumes its compile error.
            found.append(
                diagnostic("CQA003", str(compile_error), span=span, statement=text)
            )

        self._env[statement.target] = RelationInfo(schema=schema, bounds=bounds)
        return found


def analyze_statements(
    statements: Iterable[Statement],
    relations: Mapping[str, ConstraintRelation] | Database,
    budget: Budget | None = None,
) -> Diagnostics:
    """Analyze already-parsed statements against concrete base relations."""
    return Analyzer(build_environment(relations), budget).analyze(statements)


def analyze_script(
    script: str,
    relations: Mapping[str, ConstraintRelation] | Database,
    budget: Budget | None = None,
) -> Diagnostics:
    """Analyze a whole query script, syntax errors included.

    Unlike :func:`repro.query.parse_script`, a line that fails to parse
    does not abort the run: it becomes a ``CQA001`` diagnostic and the
    remaining lines are still analyzed (statements referencing the failed
    line's target then report ``CQA002``)."""
    analyzer = Analyzer(build_environment(relations), budget)
    found: list[Diagnostic] = []
    for line_no, text in split_statements(script):
        try:
            statement = parse_statement(text, line_no)
        except ParseError as exc:
            column = exc.column or 1
            found.append(
                diagnostic(
                    "CQA001",
                    exc.message,
                    span=SourceSpan(exc.line or line_no, column, column + 1),
                    statement=text,
                )
            )
            continue
        found.extend(analyzer.analyze_statement(statement))
    return Diagnostics(found)
