"""The analyzer's rule registry.

Every check the static analyzer performs is a :class:`Rule`: a stable
diagnostic code, a short name, and a pure function from a
:class:`StatementContext` to the diagnostics it finds.  Rules never
mutate anything and never evaluate a query — they look only at the AST,
the schema environment, per-relation statistics, and (for the budget
rules) the session's :class:`~repro.governor.Budget` limits.

The registry order is the emission order within one statement, arranged
so that safety errors surface before advisory schema/blow-up findings.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dataclass_field
from typing import Callable, Iterable, Iterator, Mapping

from ..algebra.predicates import Predicate, StringPredicate
from ..algebra.safety import find_unsafe
from ..algebra.stats import RelationStatistics, collect_statistics, estimate_join_size
from ..constraints import LinearConstraint
from ..constraints.solver import interval_is_empty, merge_intervals, summarise
from ..errors import ReproError
from ..governor.budget import Budget
from ..model.relation import ConstraintRelation
from ..model.schema import Schema
from ..query.ast import (
    BinaryOp,
    BufferJoinStmt,
    Comparison,
    CrossStmt,
    DiffStmt,
    ExprAST,
    Identifier,
    JoinStmt,
    Negate,
    SelectStmt,
    Statement,
    StatementBody,
)
from ..query.compiler import _compile_comparison, _is_string_side
from .cardinality import Bounds, estimate_difference_dnf
from .diagnostics import Diagnostic, SourceSpan, diagnostic

#: Join fan-out above which CQA403 reports, when no budget supplies a
#: tighter ceiling.  Purely informational — large cross products are the
#: paper's motivation for join reordering, not an error.
DEFAULT_FANOUT_THRESHOLD = 10_000


@dataclass
class RelationInfo:
    """What the analyzer knows about one name in the environment."""

    schema: Schema
    bounds: Bounds
    #: The concrete relation, for *base* relations only (derived results
    #: are not evaluated at analysis time).
    relation: ConstraintRelation | None = None
    _stats: RelationStatistics | None = dataclass_field(default=None, repr=False)

    @property
    def stats(self) -> RelationStatistics | None:
        """Lazily collected statistics (base relations only)."""
        if self._stats is None and self.relation is not None:
            self._stats = collect_statistics(self.relation)
        return self._stats


@dataclass
class StatementContext:
    """Everything one rule invocation may look at."""

    statement: Statement
    env: Mapping[str, RelationInfo]
    #: Sound result bounds for this statement, from the cardinality pass.
    bounds: Bounds
    budget: Budget | None = None
    #: The compiled plan, when compilation succeeded.
    plan: object | None = None

    @property
    def body(self) -> StatementBody:
        return self.statement.body

    def info(self, name: str) -> RelationInfo | None:
        return self.env.get(name)

    def schema_of(self, name: str) -> Schema | None:
        info = self.env.get(name)
        return info.schema if info is not None else None

    def span(self) -> SourceSpan | None:
        return getattr(self.statement.body, "span", None)


RuleCheck = Callable[[StatementContext], Iterable[Diagnostic]]


@dataclass(frozen=True)
class Rule:
    """One registered analysis rule."""

    code: str
    name: str
    check: RuleCheck

    def run(self, ctx: StatementContext) -> list[Diagnostic]:
        return list(self.check(ctx))


_REGISTRY: list[Rule] = []


def rule(code: str, name: str) -> Callable[[RuleCheck], RuleCheck]:
    """Register a rule function under ``code`` (decorator)."""

    def register(fn: RuleCheck) -> RuleCheck:
        _REGISTRY.append(Rule(code, name, fn))
        return fn

    return register


def all_rules() -> tuple[Rule, ...]:
    """The registered rules, in emission order."""
    return tuple(_REGISTRY)


# -- shared helpers ----------------------------------------------------------


def _walk_expr(expr: ExprAST) -> Iterator[ExprAST]:
    yield expr
    if isinstance(expr, BinaryOp):
        yield from _walk_expr(expr.left)
        yield from _walk_expr(expr.right)
    elif isinstance(expr, Negate):
        yield from _walk_expr(expr.operand)


def _numeric_identifiers(comparison: Comparison, schema: Schema) -> Iterator[Identifier]:
    """Identifiers of a comparison that the compiler would resolve in the
    *numeric* (linear) context — string-predicate comparisons treat bare
    unknown identifiers as constants, so they are excluded here."""
    if _is_string_side(comparison.left, schema) or _is_string_side(comparison.right, schema):
        return
    for side in (comparison.left, comparison.right):
        for node in _walk_expr(side):
            if isinstance(node, Identifier):
                yield node


def _compiled_conditions(
    body: SelectStmt, schema: Schema
) -> list[tuple[Comparison, Predicate]]:
    """Each comparison with its compiled predicate; comparisons that fail
    to compile are skipped (the compile-error path reports those)."""
    out: list[tuple[Comparison, Predicate]] = []
    for comparison in body.conditions:
        try:
            out.append((comparison, _compile_comparison(comparison, schema)))
        except ReproError:
            continue
    return out


def _conditions_span(body: SelectStmt) -> SourceSpan | None:
    spans = [c.span for c in body.conditions if c.span is not None]
    if not spans:
        return body.span
    merged = spans[0]
    for span in spans[1:]:
        merged = merged.merge(span)
    return merged


# -- safety rules (CQA1xx) ----------------------------------------------------


@rule("CQA101", "unsafe-raw-distance")
def unsafe_raw_distance(ctx: StatementContext) -> Iterable[Diagnostic]:
    """Raw ``distance`` in a selection condition (section 4's unsafe
    operator).  Fires when ``distance`` resolves to no attribute of the
    source relation — if the relation genuinely stores a ``distance``
    column, referencing it is ordinary and safe."""
    body = ctx.body
    if not isinstance(body, SelectStmt):
        return
    schema = ctx.schema_of(body.source)
    if schema is None:
        return
    for comparison in body.conditions:
        for ident in _numeric_identifiers(comparison, schema):
            if ident.name.lower() == "distance" and ident.name not in schema:
                yield diagnostic(
                    "CQA101",
                    "raw 'distance' is not evaluable in closed form within the "
                    "rational linear constraint class (section 4)",
                    span=ident.span or comparison.span,
                    hint="use 'bufferjoin ... within d' or 'knearest k near f in R' "
                    "— the safe whole-feature operators",
                )


@rule("CQA102", "unsafe-plan-operator")
def unsafe_plan_operator(ctx: StatementContext) -> Iterable[Diagnostic]:
    """Any plan node marked unsafe (programmatically built plans can
    contain :class:`~repro.algebra.safety.UnsafeDistance`)."""
    plan = ctx.plan
    if plan is None:
        return
    for site in find_unsafe(plan):  # type: ignore[arg-type]
        yield site.to_diagnostic().with_context(ctx.span(), ctx.statement.text)


# -- heterogeneous-schema rules (CQA2xx) --------------------------------------


@rule("CQA201", "join-drops-c-flag")
def join_drops_c_flag(ctx: StatementContext) -> Iterable[Diagnostic]:
    """A natural join whose shared attribute is CONSTRAINT on one side and
    RELATIONAL on the other: the join demotes it to relational, pinning
    the constraint side's broad semantics to concrete values (§3.2)."""
    body = ctx.body
    if not isinstance(body, JoinStmt):
        return
    left = ctx.schema_of(body.left)
    right = ctx.schema_of(body.right)
    if left is None or right is None:
        return
    for name in left.shared_names(right):
        l_attr, r_attr = left[name], right[name]
        if l_attr.data_type is not r_attr.data_type:
            continue  # the compile-error path reports the type clash
        if l_attr.kind is not r_attr.kind:
            c_side = body.left if l_attr.is_constraint else body.right
            yield diagnostic(
                "CQA201",
                f"join demotes {name!r} from CONSTRAINT (in {c_side!r}) to "
                "RELATIONAL: its broad semantics collapse to the relational "
                "side's concrete values",
                span=body.span,
                hint=f"rename {name!r} on one side first if both readings must survive",
            )


@rule("CQA202", "all-null-relational-attribute")
def all_null_relational(ctx: StatementContext) -> Iterable[Diagnostic]:
    """A selection conditioned on a relational attribute that is NULL in
    every tuple: NULL matches nothing (narrow semantics, §3.2), so the
    result is provably empty."""
    body = ctx.body
    if not isinstance(body, SelectStmt):
        return
    info = ctx.info(body.source)
    if info is None or info.stats is None or info.stats.tuple_count == 0:
        return
    stats = info.stats
    schema = info.schema
    reported: set[str] = set()
    for comparison in body.conditions:
        for side in (comparison.left, comparison.right):
            for node in _walk_expr(side):
                if not isinstance(node, Identifier) or node.name in reported:
                    continue
                if node.name not in schema or not schema[node.name].is_relational:
                    continue
                attr_stats = stats.attributes.get(node.name)
                if attr_stats is not None and attr_stats.nulls == stats.tuple_count:
                    reported.add(node.name)
                    yield diagnostic(
                        "CQA202",
                        f"relational attribute {node.name!r} is NULL in every tuple "
                        f"of {body.source!r}; NULL matches nothing, so this "
                        "selection is provably empty",
                        span=node.span or comparison.span,
                    )


# -- static satisfiability rules (CQA3xx) -------------------------------------


@rule("CQA301", "statically-unsatisfiable")
def statically_unsatisfiable(ctx: StatementContext) -> Iterable[Diagnostic]:
    """Selection conditions that no tuple can satisfy, decided with the
    solver's O(d) interval summary — never a full solve at compile time.

    Soundness: the condition is conjoined onto (or substituted into) each
    tuple's formula, so an unsatisfiable *condition* makes every output
    tuple unsatisfiable regardless of the data."""
    body = ctx.body
    if not isinstance(body, SelectStmt):
        return
    schema = ctx.schema_of(body.source)
    if schema is None:
        return
    compiled = _compiled_conditions(body, schema)

    # Ground-false atoms: `select 1 = 2 from R` and friends.
    for comparison, predicate in compiled:
        if isinstance(predicate, LinearConstraint) and predicate.is_trivial:
            if not predicate.truth_value():
                yield diagnostic(
                    "CQA301",
                    f"condition '{_render_comparison(comparison)}' is false for "
                    "every tuple",
                    span=comparison.span,
                )
                return  # the conjunction is dead; one report is enough

    # Conflicting string equalities on one attribute.
    required: dict[str, tuple[str, Comparison]] = {}
    forbidden: dict[tuple[str, str], Comparison] = {}
    for comparison, predicate in compiled:
        if not isinstance(predicate, StringPredicate) or predicate.is_attribute:
            continue
        if predicate.negated:
            forbidden[(predicate.attribute, predicate.value)] = comparison
        elif predicate.attribute in required:
            value, _ = required[predicate.attribute]
            if value != predicate.value:
                yield diagnostic(
                    "CQA301",
                    f"{predicate.attribute!r} cannot equal both {value!r} and "
                    f"{predicate.value!r}",
                    span=comparison.span,
                )
                return
        else:
            required[predicate.attribute] = (predicate.value, comparison)
    for attribute, (value, comparison) in required.items():
        if (attribute, value) in forbidden:
            yield diagnostic(
                "CQA301",
                f"{attribute!r} is required to equal and not equal {value!r}",
                span=comparison.span,
            )
            return

    # Interval propagation over the linear atoms.
    atoms = [p for _, p in compiled if isinstance(p, LinearConstraint) and not p.is_trivial]
    if not atoms:
        return
    summary = summarise(atoms)
    if not summary.inconsistent:
        return
    empty = sorted(
        name for name, interval in summary.bounds.items() if interval_is_empty(interval)
    )
    detail = (
        f"the implied interval for {empty[0]!r} is empty"
        if empty
        else "the implied variable intervals are inconsistent"
    )
    yield diagnostic(
        "CQA301",
        f"selection condition is unsatisfiable: {detail}",
        span=_conditions_span(body),
    )


@rule("CQA302", "condition-has-no-effect")
def condition_has_no_effect(ctx: StatementContext) -> Iterable[Diagnostic]:
    """Ground-true conjuncts (`3 <= 4`) filter nothing."""
    body = ctx.body
    if not isinstance(body, SelectStmt):
        return
    schema = ctx.schema_of(body.source)
    if schema is None:
        return
    for comparison, predicate in _compiled_conditions(body, schema):
        if isinstance(predicate, LinearConstraint) and predicate.is_trivial:
            if predicate.truth_value():
                yield diagnostic(
                    "CQA302",
                    f"condition '{_render_comparison(comparison)}' is true for "
                    "every tuple and filters nothing",
                    span=comparison.span,
                )


@rule("CQA303", "redundant-conjunct")
def redundant_conjunct(ctx: StatementContext) -> Iterable[Diagnostic]:
    """A conjunct that cannot narrow the result: an exact duplicate of an
    earlier condition, or a single-variable atom already implied by the
    interval the *other* linear atoms force on its variable.

    Decided with the solver's O(d) interval summaries, like CQA301.
    Soundness of the implication check: ``summarise(others)`` yields sound
    consequences of the other conjuncts, so when the others' implied
    interval for ``v`` is already inside the atom's own interval, the
    others entail the atom — dropping it cannot change the result."""
    body = ctx.body
    if not isinstance(body, SelectStmt):
        return
    schema = ctx.schema_of(body.source)
    if schema is None:
        return
    compiled = _compiled_conditions(body, schema)
    if len(compiled) < 2:
        return

    # Exact duplicates (any predicate kind — equality is value-based).
    seen: list[Predicate] = []
    duplicates: set[int] = set()
    for index, (comparison, predicate) in enumerate(compiled):
        if any(predicate == earlier for earlier in seen):
            duplicates.add(index)
            yield diagnostic(
                "CQA303",
                f"condition '{_render_comparison(comparison)}' duplicates an "
                "earlier conjunct",
                span=comparison.span,
                hint="drop the repeated condition",
            )
        seen.append(predicate)

    # Interval implication for single-variable linear atoms.
    linear = [
        (index, comparison, predicate)
        for index, (comparison, predicate) in enumerate(compiled)
        if isinstance(predicate, LinearConstraint) and not predicate.is_trivial
    ]
    for index, comparison, atom in linear:
        if index in duplicates:
            continue
        variables = atom.expression.variables
        if len(variables) != 1:
            continue
        (variable,) = variables
        # Duplicates are excluded from the evidence set: a pair of equal
        # atoms is one report (the duplicate above), not two.
        others = [a for i, _, a in linear if i != index and i not in duplicates]
        if not others:
            continue
        others_summary = summarise(others)
        if others_summary.inconsistent:
            continue  # CQA301 territory: everything is vacuously implied
        others_interval = others_summary.bounds.get(variable)
        if others_interval is None:
            continue
        atom_interval = summarise([atom]).bounds.get(variable)
        if atom_interval is None:
            continue
        if merge_intervals(others_interval, atom_interval) == others_interval:
            yield diagnostic(
                "CQA303",
                f"condition '{_render_comparison(comparison)}' is implied by "
                f"the other conditions (their bound on {variable!r} is "
                "already at least as tight)",
                span=comparison.span,
                hint="drop the redundant conjunct",
            )


# -- blow-up rules (CQA4xx) ---------------------------------------------------


@rule("CQA401", "dnf-blowup-exceeds-budget")
def dnf_blowup(ctx: StatementContext) -> Iterable[Diagnostic]:
    """Difference complements the right side's formulas into DNF; when the
    statically-estimated clause count already exceeds the budget's
    ``dnf_clauses`` limit, the statement is headed for a
    :class:`~repro.errors.DNFBudgetExceeded` (or a truncated result)."""
    body = ctx.body
    budget = ctx.budget
    if not isinstance(body, DiffStmt) or budget is None:
        return
    limit = budget.limits.get("dnf_clauses")
    if limit is None:
        return
    left = ctx.info(body.left)
    right = ctx.info(body.right)
    if left is None or right is None or right.relation is None:
        return
    estimate = estimate_difference_dnf(left.bounds.hi, right.relation, limit)
    if estimate is not None:
        yield diagnostic(
            "CQA401",
            f"complementing {body.right!r} may build ~{estimate} DNF clauses, "
            f"over the budget's dnf_clauses limit of {limit}",
            span=body.span,
            hint="select the right side down, or raise the dnf_clauses budget",
        )


@rule("CQA402", "output-lower-bound-exceeds-budget")
def output_lower_bound(ctx: StatementContext) -> Iterable[Diagnostic]:
    """The governor *provably* charges at least ``charged_lo`` output
    tuples for this statement; when that already exceeds the budget's
    ``output_tuples`` limit the query cannot complete, so strict analysis
    fails it before a single tuple is materialized."""
    budget = ctx.budget
    if budget is None:
        return
    limit = budget.limits.get("output_tuples")
    if limit is None:
        return
    charged = ctx.bounds.charged_lo
    if charged > limit:
        yield diagnostic(
            "CQA402",
            f"statement provably materializes at least {charged} tuples, over "
            f"the budget's output_tuples limit of {limit}",
            span=ctx.span(),
            hint="add a selection before projecting/unioning, or raise the "
            "output_tuples budget",
        )


@rule("CQA403", "large-join-fanout")
def large_join_fanout(ctx: StatementContext) -> Iterable[Diagnostic]:
    """Joins whose worst-case fan-out is large enough to matter; the
    estimate (when statistics exist) tempers the worst case."""
    body = ctx.body
    if isinstance(body, (JoinStmt, CrossStmt)):
        left_name, right_name = body.left, body.right
    elif isinstance(body, BufferJoinStmt):
        left_name, right_name = body.left, body.right
    else:
        return
    left = ctx.info(left_name)
    right = ctx.info(right_name)
    if left is None or right is None:
        return
    threshold = DEFAULT_FANOUT_THRESHOLD
    budget = ctx.budget
    if budget is not None:
        limit = budget.limits.get("output_tuples")
        if limit is not None:
            threshold = min(threshold, limit)
    worst = left.bounds.hi * right.bounds.hi
    if worst <= threshold:
        return
    estimate: float = float(worst)
    if (
        isinstance(body, JoinStmt)
        and left.stats is not None
        and right.stats is not None
    ):
        shared = left.schema.shared_names(right.schema)
        estimate = estimate_join_size(
            left.stats, right.stats, shared, left.schema, right.schema
        )
    if estimate > threshold:
        yield diagnostic(
            "CQA403",
            f"join of {left_name!r} and {right_name!r} may produce "
            f"~{int(estimate)} tuples (worst case {worst})",
            span=ctx.span(),
            hint="select each side down before joining, or add an index",
        )


def _render_comparison(comparison: Comparison) -> str:
    def render(expr: ExprAST) -> str:
        if isinstance(expr, Identifier):
            return expr.name
        if isinstance(expr, BinaryOp):
            return f"{render(expr.left)} {expr.op} {render(expr.right)}"
        if isinstance(expr, Negate):
            return f"-{render(expr.operand)}"
        value = getattr(expr, "value", expr)
        return str(value)

    return f"{render(comparison.left)} {comparison.op} {render(comparison.right)}"
