"""Static query analysis: compile-time safety, schema and blow-up checks.

The package has two layers:

* :mod:`repro.analysis.diagnostics` — the diagnostic *types* (codes,
  severities, source spans).  A dependency leaf imported eagerly here so
  the query front end and the algebra safety checker can use the types.
* :mod:`repro.analysis.analyzer` / :mod:`repro.analysis.rules` — the
  analyzer itself, which imports the query compiler and algebra layers.
  Exposed lazily (PEP 562) to keep ``repro.query.ast`` →
  ``repro.analysis`` free of a cycle back into ``repro.query``.
"""

from __future__ import annotations

from typing import Any

from .diagnostics import (
    CODE_CATALOG,
    Diagnostic,
    Diagnostics,
    Severity,
    SourceSpan,
    default_severity,
    diagnostic,
)

__all__ = [
    "CODE_CATALOG",
    "Diagnostic",
    "Diagnostics",
    "Severity",
    "SourceSpan",
    "default_severity",
    "diagnostic",
    "Analyzer",
    "analyze_script",
    "analyze_statements",
    "build_environment",
    "all_rules",
    "Rule",
    "rule",
]

_LAZY = {"Analyzer", "analyze_script", "analyze_statements", "build_environment"}
_LAZY_RULES = {"all_rules", "Rule", "rule"}


def __getattr__(name: str) -> Any:
    if name in _LAZY:
        from . import analyzer

        return getattr(analyzer, name)
    if name in _LAZY_RULES:
        from . import rules

        return getattr(rules, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
