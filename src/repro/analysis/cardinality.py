"""Static cardinality and blow-up bounds for query statements.

Two kinds of number flow through the analyzer:

* **Sound bounds** (:class:`Bounds`) — provable lower/upper tuple counts
  for a statement's result, derived from base-relation sizes and operator
  algebra.  The *charged* lower bound (:attr:`Bounds.charged_lo`) is the
  number of ``output_tuples`` the governor's producer guards are
  guaranteed to charge while evaluating the statement: projections emit
  exactly one output per input and unions emit both sides, so a chain of
  those over known-size scans has a charge the analyzer can prove before
  running anything.  When that provable charge already exceeds the active
  :class:`~repro.governor.Budget`'s ``output_tuples`` limit, the query
  *cannot* finish under the budget — rule CQA402 fails it fast.

* **Estimates** — the optimizer's join-size heuristics
  (:func:`repro.algebra.stats.estimate_join_size`) and the difference
  operator's DNF complement growth.  These are advisory only: they feed
  the warning/info rules CQA401 and CQA403, never an error.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..model.relation import ConstraintRelation


@dataclass(frozen=True)
class Bounds:
    """Sound tuple-count bounds for one relation-valued expression.

    ``lo``/``hi`` bound the result size; ``charged_lo`` bounds the
    ``output_tuples`` charge the governor sees while the statement's own
    operator runs (0 whenever the operator may stop early or filter).
    """

    lo: int
    hi: int
    charged_lo: int = 0

    @classmethod
    def exact(cls, n: int) -> "Bounds":
        return cls(lo=n, hi=n, charged_lo=n)

    @classmethod
    def of_relation(cls, relation: ConstraintRelation) -> "Bounds":
        return cls.exact(len(relation))


def select_bounds(child: Bounds) -> Bounds:
    """Selection filters: anything from nothing to everything survives."""
    return Bounds(lo=0, hi=child.hi, charged_lo=0)


def project_bounds(child: Bounds) -> Bounds:
    """Projection emits exactly one output tuple per input tuple (the
    formula is existentially quantified, never dropped), so both bounds
    and the governor charge carry through."""
    return Bounds(lo=child.lo, hi=child.hi, charged_lo=child.lo)


def rename_bounds(child: Bounds) -> Bounds:
    """Rename is a per-tuple relabelling; it materializes no new tuples
    (no producer guard), so nothing is charged."""
    return Bounds(lo=child.lo, hi=child.hi, charged_lo=0)


def join_bounds(left: Bounds, right: Bounds) -> Bounds:
    """Natural join: at worst the full cross product, at best empty."""
    return Bounds(lo=0, hi=left.hi * right.hi, charged_lo=0)


def union_bounds(left: Bounds, right: Bounds) -> Bounds:
    """CQA union concatenates (no duplicate elimination across inputs is
    guaranteed to remove tuples), so both sides are emitted and charged."""
    return Bounds(lo=left.lo + right.lo, hi=left.hi + right.hi, charged_lo=left.lo + right.lo)


def difference_bounds(left: Bounds, right: Bounds) -> Bounds:
    """Difference keeps at most the left side; the complement split can
    fragment each left tuple, so the upper bound scales with the right
    side's clause growth — conservatively bounded elsewhere."""
    return Bounds(lo=0, hi=left.hi * max(1, 2 ** min(right.hi, 20)), charged_lo=0)


def knearest_bounds(k: int) -> Bounds:
    return Bounds(lo=0, hi=k, charged_lo=0)


def estimate_difference_dnf(left_hi: int, right: ConstraintRelation, limit: int) -> int | None:
    """Estimated ``dnf_clauses`` charge of ``left − right``, or ``None``
    when it provably stays under ``limit``.

    Complementing the right side distributes one alternative per atom of
    each tuple's formula: ``Π_t max(1, |formula(t)|)`` clauses, conjoined
    once per left tuple.  The product explodes fast, so the estimate is
    computed with an early exit (capped at ``limit + 1``) instead of in
    full — the analyzer only needs to know *whether* the budget can hold,
    not the exact astronomical count.
    """
    if limit <= 0:
        return None
    product = 1
    for t in right:
        product *= max(1, len(t.formula.atoms))
        if product > limit:
            break
    total = product * max(1, left_hi)
    return total if total > limit else None
