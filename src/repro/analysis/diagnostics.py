"""Typed diagnostics for the static query analyzer.

This module is a dependency *leaf*: it imports nothing from the rest of
the library, so any layer — the query front end (which attaches
:class:`SourceSpan` to AST nodes), the algebra safety checker, the
analyzer rules — can use the diagnostic types without import cycles.

A :class:`Diagnostic` is one finding: a stable code (``CQA101``), a
severity, a human message, and an optional source span plus the statement
text it points into.  :class:`Diagnostics` is an ordered collection with
the severity queries the enforcement knob needs (``has_errors``,
``max_severity``) and a deterministic multi-line rendering used by the
CLI, by golden-file tests, and by ``StaticAnalysisError``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace
from typing import Iterable, Iterator, Mapping


class Severity(enum.IntEnum):
    """Diagnostic severities, ordered so ``max()`` picks the worst."""

    INFO = 10
    WARNING = 20
    ERROR = 30

    @property
    def label(self) -> str:
        return self.name.lower()


@dataclass(frozen=True)
class SourceSpan:
    """A half-open source range: line and 1-based [column, end_column).

    Spans currently stay within one line — the ASCII language is
    one-statement-per-line — but carry the line so multi-statement
    scripts render real positions, not the stripped-copy columns PR 3
    left behind.
    """

    line: int
    column: int
    end_column: int

    def __post_init__(self) -> None:
        if self.end_column < self.column:
            raise ValueError(f"span ends before it starts: {self!r}")

    @property
    def width(self) -> int:
        return max(1, self.end_column - self.column)

    def merge(self, other: "SourceSpan") -> "SourceSpan":
        """The smallest span covering both (same line expected)."""
        return SourceSpan(
            min(self.line, other.line),
            min(self.column, other.column) if self.line == other.line else self.column,
            max(self.end_column, other.end_column),
        )

    def render(self) -> str:
        return f"line {self.line}, col {self.column}-{self.end_column - 1}"


#: Catalog of every diagnostic code the analyzer can emit.  Stable codes:
#: tests, editors and scripts may match on them, so codes are never
#: renumbered — retired rules leave a hole.  See docs/STATIC_ANALYSIS.md
#: for the full catalog with examples and paper references.
CODE_CATALOG: Mapping[str, tuple[Severity, str]] = {
    "CQA001": (Severity.ERROR, "syntax error"),
    "CQA002": (Severity.ERROR, "unknown relation"),
    "CQA003": (Severity.ERROR, "schema violation"),
    "CQA101": (Severity.ERROR, "unsafe raw distance"),
    "CQA102": (Severity.ERROR, "unsafe plan operator"),
    "CQA201": (Severity.WARNING, "C flag dropped by join"),
    "CQA202": (Severity.WARNING, "provably empty: all-NULL relational attribute"),
    "CQA301": (Severity.WARNING, "vacuous selection (statically unsatisfiable)"),
    "CQA302": (Severity.INFO, "selection condition has no effect"),
    "CQA303": (Severity.INFO, "redundant conjunct (implied by other conditions)"),
    "CQA401": (Severity.WARNING, "DNF clause blow-up may exceed budget"),
    "CQA402": (Severity.ERROR, "output lower bound exceeds budget"),
    "CQA403": (Severity.INFO, "large join fan-out"),
}


def default_severity(code: str) -> Severity:
    """The catalog severity for ``code`` (ERROR for unknown codes)."""
    return CODE_CATALOG.get(code, (Severity.ERROR, ""))[0]


@dataclass(frozen=True)
class Diagnostic:
    """One analyzer finding."""

    code: str
    severity: Severity
    message: str
    span: SourceSpan | None = None
    #: Source text of the statement the span points into (one line).
    statement: str | None = None
    #: Optional remediation hint rendered on its own line.
    hint: str | None = None

    def with_context(self, span: SourceSpan | None, statement: str | None) -> "Diagnostic":
        """A copy with span/statement filled in when missing."""
        return replace(
            self,
            span=self.span if self.span is not None else span,
            statement=self.statement if self.statement is not None else statement,
        )

    def render(self) -> str:
        head = f"{self.code} {self.severity.label}"
        if self.span is not None:
            head += f" at {self.span.render()}"
        lines = [f"{head}: {self.message}"]
        if self.statement is not None:
            lines.append(f"  | {self.statement}")
            if self.span is not None:
                caret = " " * (self.span.column - 1) + "^" * self.span.width
                lines.append(f"  | {caret}")
        if self.hint is not None:
            lines.append(f"  = hint: {self.hint}")
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


def diagnostic(
    code: str,
    message: str,
    *,
    span: SourceSpan | None = None,
    statement: str | None = None,
    hint: str | None = None,
    severity: Severity | None = None,
) -> Diagnostic:
    """Build a :class:`Diagnostic` with the catalog severity for ``code``."""
    return Diagnostic(
        code=code,
        severity=severity if severity is not None else default_severity(code),
        message=message,
        span=span,
        statement=statement,
        hint=hint,
    )


class Diagnostics:
    """An ordered, immutable-by-convention collection of diagnostics."""

    __slots__ = ("_items",)

    def __init__(self, items: Iterable[Diagnostic] = ()) -> None:
        self._items: tuple[Diagnostic, ...] = tuple(items)

    # -- inspection --------------------------------------------------------

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __bool__(self) -> bool:
        return bool(self._items)

    def by_code(self, code: str) -> "Diagnostics":
        return Diagnostics(d for d in self._items if d.code == code)

    def at_least(self, severity: Severity) -> "Diagnostics":
        return Diagnostics(d for d in self._items if d.severity >= severity)

    @property
    def errors(self) -> "Diagnostics":
        return self.at_least(Severity.ERROR)

    @property
    def warnings(self) -> "Diagnostics":
        return Diagnostics(d for d in self._items if d.severity is Severity.WARNING)

    @property
    def has_errors(self) -> bool:
        return any(d.severity >= Severity.ERROR for d in self._items)

    @property
    def max_severity(self) -> Severity | None:
        return max((d.severity for d in self._items), default=None)

    # -- rendering ---------------------------------------------------------

    def render(self) -> str:
        """Deterministic multi-line report (golden-file format).

        One block per diagnostic in emission order, followed by a summary
        line; a clean run renders as ``ok: no diagnostics``.
        """
        if not self._items:
            return "ok: no diagnostics"
        blocks = [d.render() for d in self._items]
        counts = {
            Severity.ERROR: 0,
            Severity.WARNING: 0,
            Severity.INFO: 0,
        }
        for d in self._items:
            counts[d.severity] += 1
        summary = ", ".join(
            f"{n} {sev.label}{'s' if n != 1 else ''}"
            for sev, n in counts.items()
            if n
        )
        blocks.append(summary)
        return "\n".join(blocks)

    def __str__(self) -> str:
        return self.render()

    def __repr__(self) -> str:
        return f"Diagnostics({list(self._items)!r})"
