"""An in-process server harness for tests and benchmarks.

Runs a :class:`~repro.server.QueryServer` on its own event loop in a
daemon thread, so synchronous test/benchmark code can drive it with the
blocking :class:`~repro.server.client.ServerClient`::

    with ServerThread(database, ServerConfig(workers=2)) as harness:
        with harness.client(tenant="t1") as client:
            assert client.ping()["ok"]

``stop()`` (or leaving the ``with`` block) performs the full graceful
shutdown — drain, session close, executor teardown — and re-raises any
server-side crash into the calling thread, so a test cannot silently
pass over a server that died.
"""

from __future__ import annotations

import asyncio
import threading
from typing import Any

from ..model.database import Database
from ..obs import MetricsRegistry
from .client import ServerClient
from .server import QueryServer, ServerConfig

#: How long ``start``/``stop`` wait for the server thread before
#: declaring the harness wedged (a test-infrastructure failure, not a
#: server behaviour under test).
_HARNESS_TIMEOUT = 30.0


class ServerThread:
    """Own a server event loop on a background thread."""

    def __init__(
        self,
        database: Database,
        config: ServerConfig | None = None,
        registry: MetricsRegistry | None = None,
        source: Any = None,
    ) -> None:
        self.server = QueryServer(database, config, registry=registry, source=source)
        self._ready = threading.Event()
        self._done = threading.Event()
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop: asyncio.Event | None = None
        self._error: BaseException | None = None
        self._thread = threading.Thread(
            target=self._run, name="repro-server-harness", daemon=True
        )

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "ServerThread":
        self._thread.start()
        if not self._ready.wait(timeout=_HARNESS_TIMEOUT):
            raise RuntimeError("server harness failed to start in time")
        if self._error is not None:
            raise RuntimeError("server harness crashed on startup") from self._error
        return self

    def stop(self) -> None:
        """Trigger graceful shutdown and join the server thread."""
        if self._loop is not None and self._stop is not None and not self._done.is_set():
            self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout=_HARNESS_TIMEOUT)
        if self._thread.is_alive():
            raise RuntimeError("server harness did not shut down in time")
        if self._error is not None:
            raise RuntimeError("server harness crashed") from self._error

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as exc:  # noqa: BLE001 - devtools: allow[RT402] — thread entry point; stop() re-raises
            self._error = exc
        finally:
            self._ready.set()
            self._done.set()

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        await self.server.start()
        self._ready.set()
        await self.server.serve_until(self._stop)

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # -- conveniences --------------------------------------------------------

    @property
    def host(self) -> str:
        assert self.server.host is not None
        return self.server.host

    @property
    def port(self) -> int:
        assert self.server.port is not None
        return self.server.port

    def client(self, tenant: str = "default", timeout: float | None = 60.0) -> ServerClient:
        """A fresh blocking client connected to this server."""
        return ServerClient(self.host, self.port, tenant=tenant, timeout=timeout)

    def counter(self, name: str) -> float:
        """A server-registry counter value, read from the harness thread's
        registry (safe: plain int read)."""
        return self.server.registry.value(name)

    def run_coro(self, coro: Any) -> Any:
        """Run a coroutine on the server's loop and wait for its result."""
        assert self._loop is not None
        return asyncio.run_coroutine_threadsafe(coro, self._loop).result(
            timeout=_HARNESS_TIMEOUT
        )
