"""A synchronous client for the query server.

Usable from tests, benchmarks, and plain scripts — no asyncio on the
client side, just a blocking socket speaking the length-prefixed JSON
protocol::

    with ServerClient("127.0.0.1", 7411, tenant="alice") as client:
        reply = client.query("R0 = select t >= 4 from Hurricane")
        if reply["ok"]:
            print(reply["result"]["text"])

:meth:`ServerClient.query` returns the raw reply dict (callers inspect
``ok``/``status``/``error`` themselves — a load generator wants the shed
replies, not exceptions); :meth:`ServerClient.execute` is the strict
variant that raises :class:`ServerReplyError` on any non-ok reply.
"""

from __future__ import annotations

import itertools
import socket
from typing import Any, Mapping

from ..errors import ProtocolError, ReproError
from .protocol import recv_frame, send_frame


class ServerReplyError(ReproError):
    """A strict-mode request came back with a structured error reply.

    ``reply`` is the full wire reply; ``kind``/``status`` are lifted out
    of it for convenience (``kind`` is e.g. ``deadline_exceeded``,
    ``overloaded``, ``parse_error`` — see ``docs/SERVER.md``).
    """

    def __init__(self, reply: Mapping[str, Any]) -> None:
        error = reply.get("error") or {}
        self.reply = dict(reply)
        self.status = reply.get("status")
        self.kind = error.get("kind", "unknown")
        self.resource = error.get("resource")
        super().__init__(f"[{self.status} {self.kind}] {error.get('message', '')}")


class ServerClient:
    """A blocking connection to one :class:`~repro.server.QueryServer`."""

    def __init__(
        self,
        host: str,
        port: int,
        tenant: str = "default",
        timeout: float | None = 60.0,
    ) -> None:
        self.tenant = tenant
        self._ids = itertools.count(1)
        self._sock = socket.create_connection((host, port), timeout=timeout)

    # -- plumbing ------------------------------------------------------------

    def request(self, payload: Mapping[str, Any]) -> dict[str, Any]:
        """Send one frame and read its reply."""
        body = dict(payload)
        body.setdefault("id", next(self._ids))
        send_frame(self._sock, body)
        reply = recv_frame(self._sock)
        if reply is None:
            raise ProtocolError("server closed the connection without a reply")
        return reply

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "ServerClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- operations ----------------------------------------------------------

    def ping(self) -> dict[str, Any]:
        return self.request({"op": "ping"})

    def stats(self) -> dict[str, Any]:
        return self.request({"op": "stats"})

    def reload(self) -> dict[str, Any]:
        """Ask the server to hot-reload its database from the source file
        (same swap as ``SIGHUP``); returns the raw reply — ``ok`` with the
        new snapshot ``version``, or a 503 ``reloading`` if another reload
        is mid-swap."""
        return self.request({"op": "reload"})

    def sleep(self, seconds: float, tenant: str | None = None) -> dict[str, Any]:
        payload: dict[str, Any] = {"op": "sleep", "seconds": seconds}
        if tenant is not None:
            payload["tenant"] = tenant
        return self.request(payload)

    def query(
        self,
        statement: str,
        budget: Mapping[str, Any] | None = None,
        limit: int = 20,
        tenant: str | None = None,
    ) -> dict[str, Any]:
        """Execute one statement under this client's tenant; returns the
        raw reply dict (ok or structured error)."""
        payload: dict[str, Any] = {
            "op": "query",
            "tenant": tenant if tenant is not None else self.tenant,
            "statement": statement,
            "limit": limit,
        }
        if budget is not None:
            payload["budget"] = dict(budget)
        return self.request(payload)

    def execute(
        self,
        statement: str,
        budget: Mapping[str, Any] | None = None,
        limit: int = 20,
    ) -> dict[str, Any]:
        """Like :meth:`query` but raises :class:`ServerReplyError` unless
        the reply is ok; returns the reply's ``result`` object."""
        reply = self.query(statement, budget=budget, limit=limit)
        if not reply.get("ok"):
            raise ServerReplyError(reply)
        return reply["result"]

    def run_script(self, script: str, budget: Mapping[str, Any] | None = None) -> dict[str, Any]:
        """Execute a multi-line script statement by statement (tenant
        bindings persist server-side between statements); returns the
        last statement's ``result``."""
        result: dict[str, Any] | None = None
        for line in script.splitlines():
            stripped = line.strip()
            if not stripped or stripped.startswith("#"):
                continue
            result = self.execute(stripped, budget=budget)
        if result is None:
            raise ValueError("script contains no statements")
        return result
