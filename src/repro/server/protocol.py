"""The wire protocol: length-prefixed JSON frames plus reply shaping.

One frame is a 4-byte big-endian unsigned length followed by that many
bytes of UTF-8 JSON encoding a single object.  Requests and replies are
both frames; a connection is a sequential request/reply stream (no
pipelining — the client sends one frame and reads one frame).

Requests carry an ``op``:

* ``query`` — execute one statement: ``{"op": "query", "tenant": "...",
  "statement": "R0 = ...", "budget": {...}?, "limit": 20?, "id": ...?}``
* ``ping`` — liveness probe.
* ``stats`` — server counters (the obs registry snapshot).
* ``sleep`` — diagnostic: occupy a worker slot for ``seconds`` (admission
  control and tenant serialization apply exactly as for ``query``; the
  server clamps the duration).
* ``reload`` — hot-reload the database from the server's source file
  (the same swap ``SIGHUP`` triggers): recover the on-disk image + WAL
  into a fresh snapshot, atomically swap it in, retire old tenant
  sessions.  In-flight queries finish on their old snapshot; a reply is
  always entirely old or entirely new, never torn.

Replies mirror HTTP status classes without being HTTP: every reply has
``ok``/``status``, errors carry a structured ``error`` object — never a
traceback — mapping the library taxonomy:

====================================  ======  ==========================
exception                             status  kind
====================================  ======  ==========================
:class:`~repro.errors.DeadlineExceeded`       429  ``deadline_exceeded``
:class:`~repro.errors.SolverBudgetExceeded`   429  ``solver_budget_exceeded``
:class:`~repro.errors.DNFBudgetExceeded`      429  ``dnf_budget_exceeded``
:class:`~repro.errors.OutputLimitExceeded`    429  ``output_limit_exceeded``
:class:`~repro.errors.IOBudgetExceeded`       429  ``io_budget_exceeded``
(queue-depth shedding)                        429  ``overloaded``
:class:`~repro.errors.ParseError`             400  ``parse_error``
:class:`~repro.errors.StaticAnalysisError`    400  ``static_analysis_error``
:class:`~repro.errors.ProtocolError`          400  ``protocol_error``
:class:`~repro.errors.QueryError` et al.      400  ``query_error`` …
:class:`~repro.errors.CorruptPageError`       500  ``corrupt_page``
:class:`~repro.errors.StorageError`           500  ``storage_error``
(server draining)                             503  ``shutting_down``
(reload already in progress)                  503  ``reloading``
anything else                                 500  ``internal_error``
====================================  ======  ==========================
"""

from __future__ import annotations

import asyncio
import json
import socket
import struct
from typing import Any, Mapping

from ..errors import (
    AlgebraError,
    ConstraintError,
    CorruptPageError,
    DeadlineExceeded,
    DNFBudgetExceeded,
    GeometryError,
    IndexStructureError,
    IOBudgetExceeded,
    OutputLimitExceeded,
    ParseError,
    ProtocolError,
    QueryError,
    ReproError,
    ResourceExhausted,
    SchemaError,
    SolverBudgetExceeded,
    StaticAnalysisError,
    StorageError,
    TransientStorageError,
)

#: Frames larger than this are refused (a length prefix of 2 GiB must not
#: make the server allocate 2 GiB).
MAX_FRAME_BYTES = 16 * 1024 * 1024

_LENGTH = struct.Struct(">I")

# -- status codes (HTTP-flavoured, carried inside the JSON reply) -------------

STATUS_OK = 200
STATUS_BAD_REQUEST = 400
STATUS_EXHAUSTED = 429
STATUS_INTERNAL = 500
STATUS_UNAVAILABLE = 503

#: Most-derived-first mapping from exception class to ``(status, kind)``.
#: Order matters: ``isinstance`` walks this list top to bottom.
_ERROR_KINDS: tuple[tuple[type[BaseException], tuple[int, str]], ...] = (
    (DeadlineExceeded, (STATUS_EXHAUSTED, "deadline_exceeded")),
    (SolverBudgetExceeded, (STATUS_EXHAUSTED, "solver_budget_exceeded")),
    (DNFBudgetExceeded, (STATUS_EXHAUSTED, "dnf_budget_exceeded")),
    (OutputLimitExceeded, (STATUS_EXHAUSTED, "output_limit_exceeded")),
    (IOBudgetExceeded, (STATUS_EXHAUSTED, "io_budget_exceeded")),
    (ResourceExhausted, (STATUS_EXHAUSTED, "resource_exhausted")),
    (ParseError, (STATUS_BAD_REQUEST, "parse_error")),
    (StaticAnalysisError, (STATUS_BAD_REQUEST, "static_analysis_error")),
    (ProtocolError, (STATUS_BAD_REQUEST, "protocol_error")),
    (QueryError, (STATUS_BAD_REQUEST, "query_error")),
    (SchemaError, (STATUS_BAD_REQUEST, "schema_error")),
    (AlgebraError, (STATUS_BAD_REQUEST, "algebra_error")),
    (ConstraintError, (STATUS_BAD_REQUEST, "constraint_error")),
    (GeometryError, (STATUS_BAD_REQUEST, "geometry_error")),
    (CorruptPageError, (STATUS_INTERNAL, "corrupt_page")),
    (TransientStorageError, (STATUS_INTERNAL, "transient_storage_error")),
    (StorageError, (STATUS_INTERNAL, "storage_error")),
    (IndexStructureError, (STATUS_INTERNAL, "index_error")),
    (ReproError, (STATUS_INTERNAL, "engine_error")),
    (OSError, (STATUS_INTERNAL, "storage_error")),
)


# -- frame codec ---------------------------------------------------------------


def encode_frame(payload: Mapping[str, Any]) -> bytes:
    """Serialize one object to a length-prefixed frame."""
    body = json.dumps(payload, separators=(",", ":"), default=_jsonable).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {len(body)} bytes exceeds the {MAX_FRAME_BYTES}-byte limit"
        )
    return _LENGTH.pack(len(body)) + body


def decode_payload(body: bytes) -> dict[str, Any]:
    """Parse one frame body; the payload must be a JSON object."""
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"frame is not valid UTF-8 JSON: {exc}") from None
    if not isinstance(payload, dict):
        raise ProtocolError(
            f"frame payload must be a JSON object, got {type(payload).__name__}"
        )
    return payload


def _jsonable(value: Any) -> Any:
    """JSON fallback for the exact-arithmetic values that leak into
    snapshots and summaries (Fractions, Decimals)."""
    try:
        return float(value)
    except (TypeError, ValueError):
        return str(value)


async def read_frame(reader: asyncio.StreamReader) -> dict[str, Any] | None:
    """Read one frame; ``None`` on a clean EOF at a frame boundary."""
    try:
        prefix = await reader.readexactly(_LENGTH.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ProtocolError("connection closed mid-frame") from None
    (length,) = _LENGTH.unpack(prefix)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {length} bytes exceeds the {MAX_FRAME_BYTES}-byte limit"
        )
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError:
        raise ProtocolError("connection closed mid-frame") from None
    return decode_payload(body)


async def write_frame(writer: asyncio.StreamWriter, payload: Mapping[str, Any]) -> None:
    writer.write(encode_frame(payload))
    await writer.drain()


def send_frame(sock: socket.socket, payload: Mapping[str, Any]) -> None:
    """Blocking frame write (the sync client)."""
    sock.sendall(encode_frame(payload))


def recv_frame(sock: socket.socket) -> dict[str, Any] | None:
    """Blocking frame read; ``None`` on a clean EOF at a frame boundary."""
    prefix = _recv_exactly(sock, _LENGTH.size, eof_ok=True)
    if prefix is None:
        return None
    (length,) = _LENGTH.unpack(prefix)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {length} bytes exceeds the {MAX_FRAME_BYTES}-byte limit"
        )
    body = _recv_exactly(sock, length, eof_ok=False)
    assert body is not None
    return decode_payload(body)


def _recv_exactly(sock: socket.socket, n: int, *, eof_ok: bool) -> bytes | None:
    chunks: list[bytes] = []
    remaining = n
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            if eof_ok and remaining == n:
                return None
            raise ProtocolError("connection closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


# -- reply shaping -------------------------------------------------------------


def classify_error(exc: BaseException) -> tuple[int, str]:
    """Map an exception onto its wire ``(status, kind)``."""
    for cls, shape in _ERROR_KINDS:
        if isinstance(exc, cls):
            return shape
    return (STATUS_INTERNAL, "internal_error")


def error_reply(
    exc: BaseException,
    request_id: Any = None,
    **extra: Any,
) -> dict[str, Any]:
    """A structured error frame for ``exc`` — message and taxonomy fields
    only, never a traceback."""
    status, kind = classify_error(exc)
    error: dict[str, Any] = {"kind": kind, "message": str(exc)}
    if isinstance(exc, ResourceExhausted):
        error["resource"] = exc.resource
        error["consumed"] = exc.consumed
        error["limit"] = exc.limit
        error["snapshot"] = dict(exc.snapshot)
    error.update(extra)
    return {"ok": False, "id": request_id, "status": status, "error": error}


def shed_reply(request_id: Any, queued: int, capacity: int) -> dict[str, Any]:
    """The 429-style admission-control refusal: the queue is full, try
    again later (``retry`` is advisory)."""
    return {
        "ok": False,
        "id": request_id,
        "status": STATUS_EXHAUSTED,
        "error": {
            "kind": "overloaded",
            "message": (
                f"admission queue full ({queued} queries queued or running, "
                f"capacity {capacity}); retry later"
            ),
            "resource": "admission_queue",
            "consumed": queued,
            "limit": capacity,
        },
    }


def draining_reply(request_id: Any) -> dict[str, Any]:
    return {
        "ok": False,
        "id": request_id,
        "status": STATUS_UNAVAILABLE,
        "error": {
            "kind": "shutting_down",
            "message": "server is draining; no new queries are admitted",
        },
    }


def reloading_reply(request_id: Any) -> dict[str, Any]:
    """The 503-style refusal for a ``reload`` that arrives while another
    reload is still swapping snapshots: retry once the swap completes
    (queries are *not* refused during a reload — they run on whichever
    snapshot is current when they start)."""
    return {
        "ok": False,
        "id": request_id,
        "status": STATUS_UNAVAILABLE,
        "error": {
            "kind": "reloading",
            "message": "a snapshot reload is already in progress; retry shortly",
        },
    }


def ok_reply(request_id: Any, **fields: Any) -> dict[str, Any]:
    reply: dict[str, Any] = {"ok": True, "id": request_id, "status": STATUS_OK}
    reply.update(fields)
    return reply
