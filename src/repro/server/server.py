"""The asyncio multi-tenant query server.

A :class:`QueryServer` fronts one :class:`~repro.model.Database` with a
pool of per-tenant :class:`~repro.query.QuerySession` workers:

* **Tenancy** — each tenant name maps to a long-lived session holding the
  tenant's multi-step bindings (``R0`` from one request is visible to the
  next), its own metrics registry, and an asyncio lock serializing that
  tenant's statements (a session is single-statement-at-a-time by
  design; different tenants run concurrently).
* **Governance** — every request runs under a fresh
  :class:`~repro.governor.Budget` built from the server's per-tenant
  default knobs tightened by the request's own ``budget`` overrides (a
  request can only *lower* a server-imposed cap, never raise it).
  Exhaustion surfaces as a structured 429-style reply; with
  ``on_exhausted="partial"`` the reply is a truncated result instead.
* **Admission control** — queries execute on a bounded thread pool of
  ``workers``; at most ``max_queue`` more may wait.  Beyond that the
  server *sheds*: an immediate 429-style ``overloaded`` reply rather
  than an unbounded queue and a timed-out client.
* **Graceful shutdown** — :meth:`QueryServer.shutdown` stops accepting
  work (new requests get a 503-style ``shutting_down`` reply), waits for
  in-flight queries to finish and their replies to be written, then
  closes tenant sessions and the executor.
* **Hot reload** — the ``reload`` op (and ``SIGHUP`` under ``repro
  serve``) re-reads the source database (image + WAL recovery, see
  :mod:`repro.storage.wal`), swaps it in as a new
  :class:`~repro.storage.snapshot.DatabaseSnapshot` between requests,
  and retires old tenant sessions once their in-flight statement
  finishes — every reply is served entirely from one snapshot, never
  torn across two.
* **Idle eviction** — with ``session_ttl`` set, tenant sessions idle
  past the TTL are closed (``server.evicted``); the tenant's next
  request lazily re-creates a fresh session (bindings are dropped —
  the same contract as a reload).

All registry mutation happens on the event-loop thread; query threads
only touch their tenant session's private registry, whose per-request
deltas are merged into the server registry after each request — the same
pipeline ``EXPLAIN ANALYZE`` uses, so ``stats`` replies and per-query
profiles agree.
"""

from __future__ import annotations

import asyncio
import logging
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping

from .._concurrency import new_async_lock
from ..errors import ProtocolError, ReproError, ResourceExhausted
from ..governor.budget import Budget
from ..model.database import Database
from ..obs import (
    SERVER_DISCONNECTS,
    SERVER_DRAINED,
    SERVER_EVICTED,
    SERVER_EXHAUSTED,
    SERVER_RELOAD_ERRORS,
    SERVER_RELOAD_RETIRED,
    SERVER_RELOADS,
    SERVER_REPLIES_ERROR,
    SERVER_REPLIES_OK,
    SERVER_REQUESTS,
    SERVER_SHED,
    MetricsRegistry,
)
from ..query.session import QuerySession
from ..storage.snapshot import DatabaseSnapshot, SnapshotManager
from .protocol import (
    draining_reply,
    error_reply,
    ok_reply,
    read_frame,
    reloading_reply,
    shed_reply,
    write_frame,
)

_LOG = logging.getLogger(__name__)

#: Budget knobs a request's ``budget`` object may carry.
_BUDGET_KNOBS = (
    "deadline_seconds",
    "solver_steps",
    "dnf_clauses",
    "output_tuples",
    "io_accesses",
)

#: Ceiling on the diagnostic ``sleep`` op (it occupies a worker slot).
_MAX_SLEEP_SECONDS = 30.0


@dataclass(frozen=True)
class ServerConfig:
    """Server knobs.

    ``workers`` bounds concurrently *executing* queries (the thread
    pool); ``max_queue`` bounds queries *waiting* for a thread — beyond
    ``workers + max_queue`` admitted-but-unfinished requests the server
    sheds.  ``session_workers`` is passed through to each tenant's
    :class:`~repro.query.QuerySession` as its morsel-parallel worker
    count.  The ``deadline_seconds`` … ``on_exhausted`` fields are the
    per-tenant default budget (``None`` = that resource unlimited);
    requests may tighten them per query but never loosen them.
    """

    host: str = "127.0.0.1"
    port: int = 0
    workers: int = 2
    max_queue: int = 8
    session_workers: int = 1
    #: Execution flavour for every tenant session (see docs/COLUMNAR.md):
    #: ``"columnar"`` turns on the vectorized fast path per tenant;
    #: ``None`` defers to ``$REPRO_EXEC_MODE`` / ``"auto"``.
    exec_mode: str | None = None
    analysis: str = "off"
    use_optimizer: bool = True
    drain_timeout: float = 30.0
    #: Evict a tenant session idle longer than this many seconds (its
    #: bindings are dropped; the next request lazily re-creates the
    #: session).  ``None`` disables eviction — sessions live forever.
    session_ttl: float | None = None
    deadline_seconds: float | None = None
    solver_steps: int | None = None
    dnf_clauses: int | None = None
    output_tuples: int | None = None
    io_accesses: int | None = None
    on_exhausted: str = "raise"

    def __post_init__(self) -> None:
        if not isinstance(self.workers, int) or self.workers < 1:
            raise ValueError(f"workers must be a positive integer, got {self.workers!r}")
        if not isinstance(self.max_queue, int) or self.max_queue < 0:
            raise ValueError(f"max_queue must be >= 0, got {self.max_queue!r}")
        if self.on_exhausted not in ("raise", "partial"):
            raise ValueError(
                f"on_exhausted must be 'raise' or 'partial', got {self.on_exhausted!r}"
            )
        if self.drain_timeout <= 0:
            raise ValueError(f"drain_timeout must be positive, got {self.drain_timeout!r}")
        if self.session_ttl is not None and self.session_ttl <= 0:
            raise ValueError(f"session_ttl must be positive, got {self.session_ttl!r}")
        if self.exec_mode is not None:
            from ..exec import EXEC_MODES

            if self.exec_mode not in EXEC_MODES:
                raise ValueError(
                    f"exec_mode must be one of {EXEC_MODES}, got {self.exec_mode!r}"
                )

    def budget_knobs(self) -> dict[str, Any]:
        return {name: getattr(self, name) for name in _BUDGET_KNOBS}


@dataclass
class _Tenant:
    """One tenant's server-side state.

    ``snapshot`` is the pinned catalog view the session was built over;
    ``retired`` marks a tenant that has been removed from the routing
    table (hot reload or idle eviction) — a query that raced the removal
    re-resolves its tenant instead of running on the dead session.
    """

    name: str
    session: QuerySession
    snapshot: DatabaseSnapshot
    lock: asyncio.Lock = field(
        # Through the factory so REPRO_SANITIZE runs get order-tracked
        # locks (see repro._concurrency.new_async_lock).
        default_factory=lambda: new_async_lock("server.tenant")
    )
    queries: int = 0
    last_used: float = field(default_factory=time.monotonic)
    retired: bool = False


@dataclass
class _QueryOutcome:
    """What one executor-thread query run ships back to the loop."""

    payload: dict[str, Any]
    counters: dict[str, float]
    elapsed: float


class QueryServer:
    """A long-lived TCP front end over one constraint database."""

    def __init__(
        self,
        database: Database,
        config: ServerConfig | None = None,
        registry: MetricsRegistry | None = None,
        source: str | Path | None = None,
    ) -> None:
        self.config = config or ServerConfig()
        self.registry = registry if registry is not None else MetricsRegistry()
        self._snapshots = SnapshotManager(database)
        #: The on-disk image hot reload re-reads (``None`` disables the
        #: ``reload`` op — there is nothing to reload *from*).
        self._source = Path(source) if source is not None else None
        self._tenants: dict[str, _Tenant] = {}
        self._server: asyncio.base_events.Server | None = None
        self._executor: ThreadPoolExecutor | None = None
        self._writers: set[asyncio.StreamWriter] = set()
        self._conn_tasks: set[asyncio.Task[None]] = set()
        self._retire_tasks: set[asyncio.Task[None]] = set()
        self._sweeper: asyncio.Task[None] | None = None
        self._reloading = False
        self._active = 0
        self._idle = asyncio.Event()
        self._idle.set()
        self._draining = False
        self._closed = False
        self.host: str | None = None
        self.port: int | None = None

    @property
    def snapshot_version(self) -> int:
        return self._snapshots.version

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        """Bind the listening socket (``port=0`` picks an ephemeral port,
        published via :attr:`port`)."""
        if self._server is not None:
            raise RuntimeError("server already started")
        if self._closed:
            raise RuntimeError("server is closed")
        self._executor = ThreadPoolExecutor(
            max_workers=self.config.workers, thread_name_prefix="repro-serve"
        )
        self._server = await asyncio.start_server(
            self._handle, host=self.config.host, port=self.config.port
        )
        sockname = self._server.sockets[0].getsockname()
        self.host, self.port = sockname[0], sockname[1]
        if self.config.session_ttl is not None:
            self._sweeper = asyncio.create_task(self._sweep_idle_sessions())

    @property
    def draining(self) -> bool:
        return self._draining

    @property
    def active_queries(self) -> int:
        """Admitted-but-unfinished requests (running + queued)."""
        return self._active

    async def serve_until(self, stop: asyncio.Event) -> None:
        """Serve until ``stop`` is set, then drain and shut down."""
        if self._server is None:
            await self.start()
        await stop.wait()
        await self.shutdown()

    async def shutdown(self, drain: bool = True) -> None:
        """Graceful shutdown: refuse new work, drain in-flight queries
        (bounded by ``drain_timeout``), then tear everything down."""
        if self._closed:
            return
        self._draining = True
        if self._sweeper is not None:
            self._sweeper.cancel()
            try:
                await self._sweeper
            except asyncio.CancelledError:
                pass
            self._sweeper = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if drain and self._active:
            try:
                await asyncio.wait_for(
                    self._idle.wait(), timeout=self.config.drain_timeout
                )
            except asyncio.TimeoutError:
                _LOG.warning(
                    "drain timeout (%.1fs) with %d queries still in flight",
                    self.config.drain_timeout,
                    self._active,
                )
        for writer in list(self._writers):
            writer.close()
        # Closing the transports feeds EOF to each handler's pending read;
        # wait for them to exit on their own rather than cancelling (a
        # cancelled stream-handler task makes asyncio log spurious noise
        # from its connection_made callback).
        pending = {task for task in self._conn_tasks if not task.done()}
        if pending:
            await asyncio.wait(pending, timeout=5.0)
        retiring = {task for task in self._retire_tasks if not task.done()}
        if retiring:
            await asyncio.wait(retiring, timeout=5.0)
        self._closed = True
        tenants = list(self._tenants.values())
        self._tenants.clear()
        executor, self._executor = self._executor, None

        def _teardown() -> None:
            # Session close and executor join both touch files/threads —
            # blocking work, so it runs off-loop (the loop must stay
            # responsive for any last handler tasks unwinding above).
            for tenant in tenants:
                self._close_tenant(tenant)
            if executor is not None:
                executor.shutdown(wait=True)

        await asyncio.to_thread(_teardown)

    @staticmethod
    def _close_tenant(tenant: _Tenant) -> None:
        tenant.retired = True
        tenant.session.close()
        tenant.snapshot.unpin()

    # -- connection handling -------------------------------------------------

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._writers.add(writer)
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        try:
            while True:
                try:
                    request = await read_frame(reader)
                except ProtocolError as exc:
                    # Malformed framing: reply once, then drop the
                    # connection (the stream position is unrecoverable).
                    await self._safe_write(writer, error_reply(exc))
                    break
                if request is None:
                    break
                reply = await self._dispatch(request)
                if reader.at_eof():
                    # The client went away while its query ran; the
                    # session/lock are already released — just account
                    # for the undeliverable reply.
                    self.registry.add(SERVER_DISCONNECTS)
                    break
                if not await self._safe_write(writer, reply):
                    break
        except (ConnectionResetError, BrokenPipeError):
            self.registry.add(SERVER_DISCONNECTS)
        finally:
            self._writers.discard(writer)
            if task is not None:
                self._conn_tasks.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _safe_write(
        self, writer: asyncio.StreamWriter, reply: Mapping[str, Any]
    ) -> bool:
        try:
            await write_frame(writer, reply)
            return True
        except (ConnectionResetError, BrokenPipeError, OSError):
            self.registry.add(SERVER_DISCONNECTS)
            return False

    # -- request dispatch ----------------------------------------------------

    async def _dispatch(self, request: Mapping[str, Any]) -> dict[str, Any]:
        request_id = request.get("id")
        op = request.get("op")
        self.registry.add(SERVER_REQUESTS)
        try:
            if op == "ping":
                return ok_reply(request_id, pong=True, draining=self._draining)
            if op == "stats":
                return self._stats_reply(request_id)
            if op == "query":
                return await self._admitted(request_id, self._do_query, request)
            if op == "sleep":
                return await self._admitted(request_id, self._do_sleep, request)
            if op == "reload":
                return await self._do_reload(request_id)
            raise ProtocolError(f"unknown op {op!r}")
        except ResourceExhausted as exc:
            self.registry.add(SERVER_EXHAUSTED)
            self.registry.add(SERVER_REPLIES_ERROR)
            return error_reply(exc, request_id)
        except asyncio.CancelledError:
            raise
        except Exception as exc:
            if not isinstance(exc, ReproError):
                # Taxonomy errors are expected client-visible outcomes;
                # anything else is a server bug worth a stack trace in the
                # *log* (the wire reply still carries no traceback).
                _LOG.exception("request failed (op=%r, id=%r)", op, request_id)
            self.registry.add(SERVER_REPLIES_ERROR)
            return error_reply(exc, request_id)

    async def _admitted(self, request_id: Any, handler: Any, request: Mapping[str, Any]) -> dict[str, Any]:
        """Run ``handler`` under admission control (shed / drain gates and
        the in-flight counter the drain waits on)."""
        if self._draining:
            self.registry.add(SERVER_REPLIES_ERROR)
            return draining_reply(request_id)
        capacity = self.config.workers + self.config.max_queue
        if self._active >= capacity:
            self.registry.add(SERVER_SHED)
            self.registry.add(SERVER_REPLIES_ERROR)
            return shed_reply(request_id, queued=self._active, capacity=capacity)
        self._active += 1
        self._idle.clear()
        try:
            reply = await handler(request_id, request)
        finally:
            self._active -= 1
            if self._active == 0:
                self._idle.set()
            if self._draining:
                self.registry.add(SERVER_DRAINED)
        return reply

    def _stats_reply(self, request_id: Any) -> dict[str, Any]:
        now = time.monotonic()
        tenants = {
            tenant.name: {
                "queries": tenant.queries,
                "busy": tenant.lock.locked(),
                "snapshot_version": tenant.snapshot.version,
                "idle_seconds": now - tenant.last_used,
            }
            for tenant in self._tenants.values()
        }
        current = self._snapshots.current()
        latency = self.registry.timer("server.latency")
        return ok_reply(
            request_id,
            counters=self.registry.snapshot(),
            tenants=tenants,
            active=self._active,
            draining=self._draining,
            reloading=self._reloading,
            snapshot={"version": current.version, "readers": current.readers},
            latency={
                "calls": latency.calls,
                "total_seconds": latency.total_seconds,
                "mean_seconds": latency.mean_seconds,
            },
        )

    # -- the query op --------------------------------------------------------

    async def _do_query(self, request_id: Any, request: Mapping[str, Any]) -> dict[str, Any]:
        statement = request.get("statement")
        if not isinstance(statement, str) or not statement.strip():
            raise ProtocolError("query request needs a non-empty 'statement' string")
        limit = request.get("limit", 20)
        if not isinstance(limit, int) or isinstance(limit, bool) or limit < 0:
            raise ProtocolError(f"'limit' must be a non-negative integer, got {limit!r}")
        budget = self._budget_for(request.get("budget"))
        loop = asyncio.get_running_loop()
        tenant = await self._acquire_tenant(request)
        try:
            if self._closed:
                return draining_reply(request_id)
            assert self._executor is not None
            outcome = await loop.run_in_executor(
                self._executor, self._run_statement, tenant, statement, budget, limit
            )
        finally:
            tenant.last_used = time.monotonic()
            tenant.lock.release()
        tenant.queries += 1
        self.registry.merge_snapshot(outcome.counters)
        self.registry.timer("server.latency").add(outcome.elapsed)
        self.registry.add(SERVER_REPLIES_OK)
        return ok_reply(
            request_id,
            tenant=tenant.name,
            result=outcome.payload,
            elapsed_ms=outcome.elapsed * 1000.0,
        )

    def _run_statement(
        self, tenant: _Tenant, statement: str, budget: Budget | None, limit: int
    ) -> _QueryOutcome:
        """Executor-thread body: run one statement on the tenant's session
        under its per-request budget, capturing the engine counters."""
        session = tenant.session
        session.budget = budget
        started = time.perf_counter()
        try:
            with session.registry.scope() as counters:
                result = session.execute(statement)
        finally:
            session.budget = None
        elapsed = time.perf_counter() - started
        payload: dict[str, Any] = {
            "target": result.name,
            "rows": len(result),
            "truncated": result.truncated,
            "text": result.pretty(limit=limit),
        }
        if budget is not None:
            payload["budget"] = budget.summary()
            if result.truncated:
                # Partial-mode exhaustion: the rows above are the sound
                # prefix the governor kept; say which window was spent.
                payload["exhausted"] = {
                    name: value
                    for name, value in budget.snapshot().items()
                    if name.startswith(("consumed.", "limit."))
                }
        return _QueryOutcome(payload=payload, counters=dict(counters), elapsed=elapsed)

    def _tenant_for(self, request: Mapping[str, Any]) -> _Tenant:
        name = request.get("tenant", "default")
        if not isinstance(name, str) or not name:
            raise ProtocolError(f"'tenant' must be a non-empty string, got {name!r}")
        tenant = self._tenants.get(name)
        if tenant is None:
            snapshot = self._snapshots.current().pin()
            session = QuerySession(
                snapshot.database,
                use_optimizer=self.config.use_optimizer,
                registry=MetricsRegistry(),
                analysis=self.config.analysis,
                workers=self.config.session_workers,
                exec_mode=self.config.exec_mode,
            )
            tenant = self._tenants[name] = _Tenant(
                name=name, session=session, snapshot=snapshot
            )
        tenant.last_used = time.monotonic()
        return tenant

    async def _acquire_tenant(self, request: Mapping[str, Any]) -> _Tenant:
        """Resolve the request's tenant and take its statement lock,
        re-resolving if a reload or eviction retired the tenant between
        lookup and acquisition (the freshly resolved tenant then sits on
        the current snapshot)."""
        while True:
            tenant = self._tenant_for(request)
            await tenant.lock.acquire()
            if not tenant.retired:
                return tenant
            tenant.lock.release()

    def _budget_for(self, overrides: Any) -> Budget | None:
        """The effective per-request budget: server defaults tightened by
        the request's overrides (a request can never exceed the server's
        per-tenant caps)."""
        knobs = self.config.budget_knobs()
        on_exhausted = self.config.on_exhausted
        if overrides is not None:
            if not isinstance(overrides, Mapping):
                raise ProtocolError(f"'budget' must be an object, got {overrides!r}")
            unknown = set(overrides) - set(_BUDGET_KNOBS) - {"on_exhausted"}
            if unknown:
                raise ProtocolError(f"unknown budget knobs: {sorted(unknown)}")
            for name in _BUDGET_KNOBS:
                if name not in overrides:
                    continue
                value = overrides[name]
                if isinstance(value, bool) or not isinstance(value, (int, float)):
                    raise ProtocolError(f"budget knob {name!r} must be a number, got {value!r}")
                if value <= 0:
                    raise ProtocolError(f"budget knob {name!r} must be positive, got {value!r}")
                if name != "deadline_seconds":
                    value = int(value)
                current = knobs[name]
                knobs[name] = value if current is None else min(current, value)
            if "on_exhausted" in overrides:
                mode = overrides["on_exhausted"]
                if mode not in ("raise", "partial"):
                    raise ProtocolError(
                        f"budget knob 'on_exhausted' must be 'raise' or 'partial', got {mode!r}"
                    )
                on_exhausted = mode
        if all(value is None for value in knobs.values()):
            return None
        return Budget(on_exhausted=on_exhausted, **knobs)

    # -- hot reload ----------------------------------------------------------

    async def _do_reload(self, request_id: Any) -> dict[str, Any]:
        """Swap in a fresh snapshot of the source database.

        The load (image + WAL recovery) runs off-loop on the *default*
        executor so query workers stay free; the swap itself is a single
        loop-thread assignment.  Old tenant sessions are retired — each
        finishes its in-flight statement on its old snapshot, then closes
        — and the next request per tenant lazily builds a session over
        the new snapshot.  No reply is ever assembled from two snapshots.
        """
        if self._draining:
            self.registry.add(SERVER_REPLIES_ERROR)
            return draining_reply(request_id)
        if self._source is None:
            raise ProtocolError(
                "server has no reload source (it was started from an in-memory "
                "database, not a file)"
            )
        if self._reloading:
            self.registry.add(SERVER_REPLIES_ERROR)
            return reloading_reply(request_id)
        self._reloading = True
        try:
            loop = asyncio.get_running_loop()
            try:
                database, recovery = await loop.run_in_executor(None, self._load_source)
            except Exception:
                self.registry.add(SERVER_RELOAD_ERRORS)
                raise
            self._snapshots.swap(database)
            retired = self._retire_all_tenants()
            current = self._snapshots.current()
            self.registry.add(SERVER_RELOADS)
            if retired:
                self.registry.add(SERVER_RELOAD_RETIRED, retired)
            self.registry.add(SERVER_REPLIES_OK)
            return ok_reply(
                request_id,
                reloaded=True,
                version=current.version,
                relations=list(database.names()),
                retired_sessions=retired,
                recovery=recovery,
            )
        finally:
            self._reloading = False

    def _load_source(self) -> tuple[Database, dict[str, int]]:
        """Executor body: recover the image + WAL into a fresh catalog."""
        from ..storage.wal import open_durable

        assert self._source is not None
        with open_durable(self._source) as durable:
            return durable.database, durable.recovery.to_dict()

    def reload_soon(self) -> None:
        """Schedule a reload from a signal handler (``SIGHUP``); safe to
        call from the loop thread only (signal handlers registered via
        ``loop.add_signal_handler`` are)."""

        async def _run() -> None:
            try:
                await self._do_reload(None)
            except (ReproError, OSError):
                # Only the failure modes a bad source file can produce;
                # anything else (a bug) propagates and fails loudly.
                _LOG.exception("SIGHUP reload failed")

        task = asyncio.ensure_future(_run())
        self._retire_tasks.add(task)
        task.add_done_callback(self._retire_tasks.discard)

    def _retire_all_tenants(self) -> int:
        """Remove every tenant from the routing table; each one's session
        closes once its in-flight statement (if any) finishes."""
        tenants = list(self._tenants.values())
        self._tenants.clear()
        for tenant in tenants:
            tenant.retired = True
            task = asyncio.create_task(self._drain_tenant(tenant))
            self._retire_tasks.add(task)
            task.add_done_callback(self._retire_tasks.discard)
        return len(tenants)

    async def _drain_tenant(self, tenant: _Tenant) -> None:
        async with tenant.lock:
            # close() may flush session state — blocking, so off-loop.
            await asyncio.to_thread(tenant.session.close)
            tenant.snapshot.unpin()

    # -- idle-session eviction -----------------------------------------------

    async def _sweep_idle_sessions(self) -> None:
        ttl = self.config.session_ttl
        assert ttl is not None
        interval = max(ttl / 4.0, 0.05)
        while True:
            await asyncio.sleep(interval)
            self.evict_idle()

    def evict_idle(self) -> int:
        """Close tenant sessions idle past ``session_ttl``; returns how
        many were evicted.  Runs synchronously on the loop thread with no
        await points, so the busy-check cannot race a statement: a tenant
        whose lock is free here stays free until we are done with it."""
        ttl = self.config.session_ttl
        if ttl is None:
            return 0
        now = time.monotonic()
        evicted = 0
        for name, tenant in list(self._tenants.items()):
            if tenant.lock.locked() or now - tenant.last_used < ttl:
                continue
            del self._tenants[name]
            self._close_tenant(tenant)
            evicted += 1
            self.registry.add(SERVER_EVICTED)
        return evicted

    # -- the sleep op --------------------------------------------------------

    async def _do_sleep(self, request_id: Any, request: Mapping[str, Any]) -> dict[str, Any]:
        """Diagnostic: hold a worker slot (and optionally a tenant lock)
        for a bounded duration — the server-side analogue of
        ``SELECT pg_sleep(n)``, used by the fault tests and load probes."""
        seconds = request.get("seconds", 0)
        if isinstance(seconds, bool) or not isinstance(seconds, (int, float)) or seconds < 0:
            raise ProtocolError(f"'seconds' must be a non-negative number, got {seconds!r}")
        seconds = min(float(seconds), _MAX_SLEEP_SECONDS)
        loop = asyncio.get_running_loop()
        if "tenant" in request:
            tenant = self._tenant_for(request)
            async with tenant.lock:
                assert self._executor is not None
                await loop.run_in_executor(self._executor, time.sleep, seconds)
        else:
            assert self._executor is not None
            await loop.run_in_executor(self._executor, time.sleep, seconds)
        self.registry.add(SERVER_REPLIES_OK)
        return ok_reply(request_id, slept=seconds)
