"""The asyncio multi-tenant query server.

A :class:`QueryServer` fronts one :class:`~repro.model.Database` with a
pool of per-tenant :class:`~repro.query.QuerySession` workers:

* **Tenancy** — each tenant name maps to a long-lived session holding the
  tenant's multi-step bindings (``R0`` from one request is visible to the
  next), its own metrics registry, and an asyncio lock serializing that
  tenant's statements (a session is single-statement-at-a-time by
  design; different tenants run concurrently).
* **Governance** — every request runs under a fresh
  :class:`~repro.governor.Budget` built from the server's per-tenant
  default knobs tightened by the request's own ``budget`` overrides (a
  request can only *lower* a server-imposed cap, never raise it).
  Exhaustion surfaces as a structured 429-style reply; with
  ``on_exhausted="partial"`` the reply is a truncated result instead.
* **Admission control** — queries execute on a bounded thread pool of
  ``workers``; at most ``max_queue`` more may wait.  Beyond that the
  server *sheds*: an immediate 429-style ``overloaded`` reply rather
  than an unbounded queue and a timed-out client.
* **Graceful shutdown** — :meth:`QueryServer.shutdown` stops accepting
  work (new requests get a 503-style ``shutting_down`` reply), waits for
  in-flight queries to finish and their replies to be written, then
  closes tenant sessions and the executor.

All registry mutation happens on the event-loop thread; query threads
only touch their tenant session's private registry, whose per-request
deltas are merged into the server registry after each request — the same
pipeline ``EXPLAIN ANALYZE`` uses, so ``stats`` replies and per-query
profiles agree.
"""

from __future__ import annotations

import asyncio
import logging
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Mapping

from ..errors import ProtocolError, ReproError, ResourceExhausted
from ..governor.budget import Budget
from ..model.database import Database
from ..obs import (
    SERVER_DISCONNECTS,
    SERVER_DRAINED,
    SERVER_EXHAUSTED,
    SERVER_REPLIES_ERROR,
    SERVER_REPLIES_OK,
    SERVER_REQUESTS,
    SERVER_SHED,
    MetricsRegistry,
)
from ..query.session import QuerySession
from .protocol import (
    draining_reply,
    error_reply,
    ok_reply,
    read_frame,
    shed_reply,
    write_frame,
)

_LOG = logging.getLogger(__name__)

#: Budget knobs a request's ``budget`` object may carry.
_BUDGET_KNOBS = (
    "deadline_seconds",
    "solver_steps",
    "dnf_clauses",
    "output_tuples",
    "io_accesses",
)

#: Ceiling on the diagnostic ``sleep`` op (it occupies a worker slot).
_MAX_SLEEP_SECONDS = 30.0


@dataclass(frozen=True)
class ServerConfig:
    """Server knobs.

    ``workers`` bounds concurrently *executing* queries (the thread
    pool); ``max_queue`` bounds queries *waiting* for a thread — beyond
    ``workers + max_queue`` admitted-but-unfinished requests the server
    sheds.  ``session_workers`` is passed through to each tenant's
    :class:`~repro.query.QuerySession` as its morsel-parallel worker
    count.  The ``deadline_seconds`` … ``on_exhausted`` fields are the
    per-tenant default budget (``None`` = that resource unlimited);
    requests may tighten them per query but never loosen them.
    """

    host: str = "127.0.0.1"
    port: int = 0
    workers: int = 2
    max_queue: int = 8
    session_workers: int = 1
    #: Execution flavour for every tenant session (see docs/COLUMNAR.md):
    #: ``"columnar"`` turns on the vectorized fast path per tenant;
    #: ``None`` defers to ``$REPRO_EXEC_MODE`` / ``"auto"``.
    exec_mode: str | None = None
    analysis: str = "off"
    use_optimizer: bool = True
    drain_timeout: float = 30.0
    deadline_seconds: float | None = None
    solver_steps: int | None = None
    dnf_clauses: int | None = None
    output_tuples: int | None = None
    io_accesses: int | None = None
    on_exhausted: str = "raise"

    def __post_init__(self) -> None:
        if not isinstance(self.workers, int) or self.workers < 1:
            raise ValueError(f"workers must be a positive integer, got {self.workers!r}")
        if not isinstance(self.max_queue, int) or self.max_queue < 0:
            raise ValueError(f"max_queue must be >= 0, got {self.max_queue!r}")
        if self.on_exhausted not in ("raise", "partial"):
            raise ValueError(
                f"on_exhausted must be 'raise' or 'partial', got {self.on_exhausted!r}"
            )
        if self.drain_timeout <= 0:
            raise ValueError(f"drain_timeout must be positive, got {self.drain_timeout!r}")
        if self.exec_mode is not None:
            from ..exec import EXEC_MODES

            if self.exec_mode not in EXEC_MODES:
                raise ValueError(
                    f"exec_mode must be one of {EXEC_MODES}, got {self.exec_mode!r}"
                )

    def budget_knobs(self) -> dict[str, Any]:
        return {name: getattr(self, name) for name in _BUDGET_KNOBS}


@dataclass
class _Tenant:
    """One tenant's server-side state."""

    name: str
    session: QuerySession
    lock: asyncio.Lock = field(default_factory=asyncio.Lock)
    queries: int = 0


@dataclass
class _QueryOutcome:
    """What one executor-thread query run ships back to the loop."""

    payload: dict[str, Any]
    counters: dict[str, float]
    elapsed: float


class QueryServer:
    """A long-lived TCP front end over one constraint database."""

    def __init__(
        self,
        database: Database,
        config: ServerConfig | None = None,
        registry: MetricsRegistry | None = None,
    ) -> None:
        self.config = config or ServerConfig()
        self.registry = registry if registry is not None else MetricsRegistry()
        self._database = database
        self._tenants: dict[str, _Tenant] = {}
        self._server: asyncio.base_events.Server | None = None
        self._executor: ThreadPoolExecutor | None = None
        self._writers: set[asyncio.StreamWriter] = set()
        self._conn_tasks: set[asyncio.Task[None]] = set()
        self._active = 0
        self._idle = asyncio.Event()
        self._idle.set()
        self._draining = False
        self._closed = False
        self.host: str | None = None
        self.port: int | None = None

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        """Bind the listening socket (``port=0`` picks an ephemeral port,
        published via :attr:`port`)."""
        if self._server is not None:
            raise RuntimeError("server already started")
        if self._closed:
            raise RuntimeError("server is closed")
        self._executor = ThreadPoolExecutor(
            max_workers=self.config.workers, thread_name_prefix="repro-serve"
        )
        self._server = await asyncio.start_server(
            self._handle, host=self.config.host, port=self.config.port
        )
        sockname = self._server.sockets[0].getsockname()
        self.host, self.port = sockname[0], sockname[1]

    @property
    def draining(self) -> bool:
        return self._draining

    @property
    def active_queries(self) -> int:
        """Admitted-but-unfinished requests (running + queued)."""
        return self._active

    async def serve_until(self, stop: asyncio.Event) -> None:
        """Serve until ``stop`` is set, then drain and shut down."""
        if self._server is None:
            await self.start()
        await stop.wait()
        await self.shutdown()

    async def shutdown(self, drain: bool = True) -> None:
        """Graceful shutdown: refuse new work, drain in-flight queries
        (bounded by ``drain_timeout``), then tear everything down."""
        if self._closed:
            return
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if drain and self._active:
            try:
                await asyncio.wait_for(
                    self._idle.wait(), timeout=self.config.drain_timeout
                )
            except asyncio.TimeoutError:
                _LOG.warning(
                    "drain timeout (%.1fs) with %d queries still in flight",
                    self.config.drain_timeout,
                    self._active,
                )
        for writer in list(self._writers):
            writer.close()
        # Closing the transports feeds EOF to each handler's pending read;
        # wait for them to exit on their own rather than cancelling (a
        # cancelled stream-handler task makes asyncio log spurious noise
        # from its connection_made callback).
        pending = {task for task in self._conn_tasks if not task.done()}
        if pending:
            await asyncio.wait(pending, timeout=5.0)
        self._closed = True
        for tenant in self._tenants.values():
            tenant.session.close()
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    # -- connection handling -------------------------------------------------

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._writers.add(writer)
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        try:
            while True:
                try:
                    request = await read_frame(reader)
                except ProtocolError as exc:
                    # Malformed framing: reply once, then drop the
                    # connection (the stream position is unrecoverable).
                    await self._safe_write(writer, error_reply(exc))
                    break
                if request is None:
                    break
                reply = await self._dispatch(request)
                if reader.at_eof():
                    # The client went away while its query ran; the
                    # session/lock are already released — just account
                    # for the undeliverable reply.
                    self.registry.add(SERVER_DISCONNECTS)
                    break
                if not await self._safe_write(writer, reply):
                    break
        except (ConnectionResetError, BrokenPipeError):
            self.registry.add(SERVER_DISCONNECTS)
        finally:
            self._writers.discard(writer)
            if task is not None:
                self._conn_tasks.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _safe_write(
        self, writer: asyncio.StreamWriter, reply: Mapping[str, Any]
    ) -> bool:
        try:
            await write_frame(writer, reply)
            return True
        except (ConnectionResetError, BrokenPipeError, OSError):
            self.registry.add(SERVER_DISCONNECTS)
            return False

    # -- request dispatch ----------------------------------------------------

    async def _dispatch(self, request: Mapping[str, Any]) -> dict[str, Any]:
        request_id = request.get("id")
        op = request.get("op")
        self.registry.add(SERVER_REQUESTS)
        try:
            if op == "ping":
                return ok_reply(request_id, pong=True, draining=self._draining)
            if op == "stats":
                return self._stats_reply(request_id)
            if op == "query":
                return await self._admitted(request_id, self._do_query, request)
            if op == "sleep":
                return await self._admitted(request_id, self._do_sleep, request)
            raise ProtocolError(f"unknown op {op!r}")
        except ResourceExhausted as exc:
            self.registry.add(SERVER_EXHAUSTED)
            self.registry.add(SERVER_REPLIES_ERROR)
            return error_reply(exc, request_id)
        except asyncio.CancelledError:
            raise
        except Exception as exc:
            if not isinstance(exc, ReproError):
                # Taxonomy errors are expected client-visible outcomes;
                # anything else is a server bug worth a stack trace in the
                # *log* (the wire reply still carries no traceback).
                _LOG.exception("request failed (op=%r, id=%r)", op, request_id)
            self.registry.add(SERVER_REPLIES_ERROR)
            return error_reply(exc, request_id)

    async def _admitted(self, request_id: Any, handler: Any, request: Mapping[str, Any]) -> dict[str, Any]:
        """Run ``handler`` under admission control (shed / drain gates and
        the in-flight counter the drain waits on)."""
        if self._draining:
            self.registry.add(SERVER_REPLIES_ERROR)
            return draining_reply(request_id)
        capacity = self.config.workers + self.config.max_queue
        if self._active >= capacity:
            self.registry.add(SERVER_SHED)
            self.registry.add(SERVER_REPLIES_ERROR)
            return shed_reply(request_id, queued=self._active, capacity=capacity)
        self._active += 1
        self._idle.clear()
        try:
            reply = await handler(request_id, request)
        finally:
            self._active -= 1
            if self._active == 0:
                self._idle.set()
            if self._draining:
                self.registry.add(SERVER_DRAINED)
        return reply

    def _stats_reply(self, request_id: Any) -> dict[str, Any]:
        tenants = {
            tenant.name: {"queries": tenant.queries, "busy": tenant.lock.locked()}
            for tenant in self._tenants.values()
        }
        latency = self.registry.timer("server.latency")
        return ok_reply(
            request_id,
            counters=self.registry.snapshot(),
            tenants=tenants,
            active=self._active,
            draining=self._draining,
            latency={
                "calls": latency.calls,
                "total_seconds": latency.total_seconds,
                "mean_seconds": latency.mean_seconds,
            },
        )

    # -- the query op --------------------------------------------------------

    async def _do_query(self, request_id: Any, request: Mapping[str, Any]) -> dict[str, Any]:
        statement = request.get("statement")
        if not isinstance(statement, str) or not statement.strip():
            raise ProtocolError("query request needs a non-empty 'statement' string")
        limit = request.get("limit", 20)
        if not isinstance(limit, int) or isinstance(limit, bool) or limit < 0:
            raise ProtocolError(f"'limit' must be a non-negative integer, got {limit!r}")
        tenant = self._tenant_for(request)
        budget = self._budget_for(request.get("budget"))
        loop = asyncio.get_running_loop()
        async with tenant.lock:
            if self._closed:
                return draining_reply(request_id)
            assert self._executor is not None
            outcome = await loop.run_in_executor(
                self._executor, self._run_statement, tenant, statement, budget, limit
            )
        tenant.queries += 1
        self.registry.merge_snapshot(outcome.counters)
        self.registry.timer("server.latency").add(outcome.elapsed)
        self.registry.add(SERVER_REPLIES_OK)
        return ok_reply(
            request_id,
            tenant=tenant.name,
            result=outcome.payload,
            elapsed_ms=outcome.elapsed * 1000.0,
        )

    def _run_statement(
        self, tenant: _Tenant, statement: str, budget: Budget | None, limit: int
    ) -> _QueryOutcome:
        """Executor-thread body: run one statement on the tenant's session
        under its per-request budget, capturing the engine counters."""
        session = tenant.session
        session.budget = budget
        started = time.perf_counter()
        try:
            with session.registry.scope() as counters:
                result = session.execute(statement)
        finally:
            session.budget = None
        elapsed = time.perf_counter() - started
        payload: dict[str, Any] = {
            "target": result.name,
            "rows": len(result),
            "truncated": result.truncated,
            "text": result.pretty(limit=limit),
        }
        if budget is not None:
            payload["budget"] = budget.summary()
            if result.truncated:
                # Partial-mode exhaustion: the rows above are the sound
                # prefix the governor kept; say which window was spent.
                payload["exhausted"] = {
                    name: value
                    for name, value in budget.snapshot().items()
                    if name.startswith(("consumed.", "limit."))
                }
        return _QueryOutcome(payload=payload, counters=dict(counters), elapsed=elapsed)

    def _tenant_for(self, request: Mapping[str, Any]) -> _Tenant:
        name = request.get("tenant", "default")
        if not isinstance(name, str) or not name:
            raise ProtocolError(f"'tenant' must be a non-empty string, got {name!r}")
        tenant = self._tenants.get(name)
        if tenant is None:
            session = QuerySession(
                self._database,
                use_optimizer=self.config.use_optimizer,
                registry=MetricsRegistry(),
                analysis=self.config.analysis,
                workers=self.config.session_workers,
                exec_mode=self.config.exec_mode,
            )
            tenant = self._tenants[name] = _Tenant(name=name, session=session)
        return tenant

    def _budget_for(self, overrides: Any) -> Budget | None:
        """The effective per-request budget: server defaults tightened by
        the request's overrides (a request can never exceed the server's
        per-tenant caps)."""
        knobs = self.config.budget_knobs()
        on_exhausted = self.config.on_exhausted
        if overrides is not None:
            if not isinstance(overrides, Mapping):
                raise ProtocolError(f"'budget' must be an object, got {overrides!r}")
            unknown = set(overrides) - set(_BUDGET_KNOBS) - {"on_exhausted"}
            if unknown:
                raise ProtocolError(f"unknown budget knobs: {sorted(unknown)}")
            for name in _BUDGET_KNOBS:
                if name not in overrides:
                    continue
                value = overrides[name]
                if isinstance(value, bool) or not isinstance(value, (int, float)):
                    raise ProtocolError(f"budget knob {name!r} must be a number, got {value!r}")
                if value <= 0:
                    raise ProtocolError(f"budget knob {name!r} must be positive, got {value!r}")
                if name != "deadline_seconds":
                    value = int(value)
                current = knobs[name]
                knobs[name] = value if current is None else min(current, value)
            if "on_exhausted" in overrides:
                mode = overrides["on_exhausted"]
                if mode not in ("raise", "partial"):
                    raise ProtocolError(
                        f"budget knob 'on_exhausted' must be 'raise' or 'partial', got {mode!r}"
                    )
                on_exhausted = mode
        if all(value is None for value in knobs.values()):
            return None
        return Budget(on_exhausted=on_exhausted, **knobs)

    # -- the sleep op --------------------------------------------------------

    async def _do_sleep(self, request_id: Any, request: Mapping[str, Any]) -> dict[str, Any]:
        """Diagnostic: hold a worker slot (and optionally a tenant lock)
        for a bounded duration — the server-side analogue of
        ``SELECT pg_sleep(n)``, used by the fault tests and load probes."""
        seconds = request.get("seconds", 0)
        if isinstance(seconds, bool) or not isinstance(seconds, (int, float)) or seconds < 0:
            raise ProtocolError(f"'seconds' must be a non-negative number, got {seconds!r}")
        seconds = min(float(seconds), _MAX_SLEEP_SECONDS)
        loop = asyncio.get_running_loop()
        if "tenant" in request:
            tenant = self._tenant_for(request)
            async with tenant.lock:
                assert self._executor is not None
                await loop.run_in_executor(self._executor, time.sleep, seconds)
        else:
            assert self._executor is not None
            await loop.run_in_executor(self._executor, time.sleep, seconds)
        self.registry.add(SERVER_REPLIES_OK)
        return ok_reply(request_id, slept=seconds)
