"""The async multi-tenant query server (see ``docs/SERVER.md``).

A long-lived TCP front end over the engine: per-tenant
:class:`~repro.query.QuerySession` state, per-request
:class:`~repro.governor.Budget` enforcement, bounded-queue admission
control with load shedding, and graceful drain — the service boundary
that turns the governor stack's primitives into multi-user behaviour.

* :class:`QueryServer` / :class:`ServerConfig` — the asyncio server.
* :class:`ServerClient` — a blocking client for tests/benchmarks/scripts.
* :class:`ServerThread` — an in-process harness running the server on a
  background event loop.
* :mod:`repro.server.protocol` — the length-prefixed JSON wire format
  and the exception-taxonomy → reply-kind mapping.
"""

from .client import ServerClient, ServerReplyError
from .harness import ServerThread
from .protocol import (
    MAX_FRAME_BYTES,
    STATUS_BAD_REQUEST,
    STATUS_EXHAUSTED,
    STATUS_INTERNAL,
    STATUS_OK,
    STATUS_UNAVAILABLE,
    classify_error,
    decode_payload,
    encode_frame,
    error_reply,
    recv_frame,
    reloading_reply,
    send_frame,
)
from .server import QueryServer, ServerConfig

__all__ = [
    "MAX_FRAME_BYTES",
    "QueryServer",
    "STATUS_BAD_REQUEST",
    "STATUS_EXHAUSTED",
    "STATUS_INTERNAL",
    "STATUS_OK",
    "STATUS_UNAVAILABLE",
    "ServerClient",
    "ServerConfig",
    "ServerReplyError",
    "ServerThread",
    "classify_error",
    "decode_payload",
    "encode_frame",
    "error_reply",
    "recv_frame",
    "reloading_reply",
    "send_frame",
]
