"""Figure 4 — querying both attributes: joint vs separate indexes.

Regenerates the paper's Figure 4 series (disk accesses vs query area for
experiments 1-A and 1-B) and records the headline numbers in the benchmark
report.  The shape assertions mirror §5.4.1's conclusions; run with ``-s``
to see the full per-bin table.
"""

from conftest import run_fig4

from repro.experiments import print_result


def test_figure4_two_attribute_queries(benchmark, scale):
    result = benchmark.pedantic(lambda: run_fig4(scale), rounds=1, iterations=1)
    print()
    print_result(result)
    constraint_series, relational_series = result.series
    benchmark.extra_info["scale"] = scale.name
    for series in result.series:
        key = "1A" if "1-A" in series.label else "1B"
        benchmark.extra_info[f"{key}_joint_mean_accesses"] = round(series.mean_joint, 2)
        benchmark.extra_info[f"{key}_separate_mean_accesses"] = round(series.mean_separate, 2)
        benchmark.extra_info[f"{key}_advantage"] = round(series.joint_advantage, 2)
        # "it is more efficient to have them stored in the same index
        # structure" — for both variants.
        assert series.mean_joint < series.mean_separate, series.label
    # "a larger improvement for constraint attributes"
    assert constraint_series.joint_advantage >= relational_series.joint_advantage
