"""Section 4 — Buffer-Join and k-Nearest: indexed vs brute force.

The whole-feature operators run as two-step filter/refine spatial joins
over the feature R*-tree; these benches quantify the index's pruning
against the quadratic brute-force baselines (which double as correctness
oracles in the test suite).
"""

from repro.spatial import (
    BufferJoinStatistics,
    buffer_join,
    buffer_join_bruteforce,
    k_nearest_bruteforce,
    k_nearest_features,
)


def test_buffer_join_indexed(benchmark, gis_scenario):
    gis_scenario.roads.index()  # build outside the timed region

    def run():
        stats = BufferJoinStatistics()
        return buffer_join(
            gis_scenario.parcels, gis_scenario.roads, 2, statistics=stats
        ), stats

    result, stats = benchmark(run)
    benchmark.extra_info["pairs"] = len(result)
    benchmark.extra_info["candidate_pairs"] = stats.candidate_pairs
    benchmark.extra_info["refinement_rate"] = round(stats.refinement_rate, 3)


def test_buffer_join_bruteforce_baseline(benchmark, gis_scenario):
    result = benchmark(
        lambda: buffer_join_bruteforce(gis_scenario.parcels, gis_scenario.roads, 2)
    )
    benchmark.extra_info["pairs"] = len(result)


def test_buffer_join_self_join_parcels(benchmark, gis_scenario):
    gis_scenario.parcels.index()
    result = benchmark(
        lambda: buffer_join(gis_scenario.parcels, gis_scenario.parcels, 1)
    )
    benchmark.extra_info["pairs"] = len(result)
    assert len(result) > 0  # adjacent parcels are within 1 of each other


def test_k_nearest_indexed(benchmark, gis_scenario):
    gis_scenario.shelters.index()
    query = next(iter(gis_scenario.parcels))
    result = benchmark(lambda: k_nearest_features(gis_scenario.shelters, query, 3))
    assert len(result) == 3


def test_k_nearest_bruteforce_baseline(benchmark, gis_scenario):
    query = next(iter(gis_scenario.parcels))
    result = benchmark(lambda: k_nearest_bruteforce(gis_scenario.shelters, query, 3))
    assert len(result) == 3
