"""Durability benchmark for the write-ahead log (`repro.storage.wal`).

Measures the two costs the WAL design trades between:

* **ingest rate** — committed transactions/second and tuples/second
  through :class:`~repro.storage.wal.DurableDatabase`, with and without
  the fsync barrier (the gap is the price of crash durability),
* **recovery time** — wall-clock to re-open a database whose WAL holds
  the whole ingest history (no checkpoint), i.e. the worst-case replay,
  and after a checkpoint (the best case: image load, empty log).

Reported per run: txn/s and tuples/s for the fsync and no-fsync ingest
paths, replay recovery milliseconds and records replayed, checkpointed
recovery milliseconds, and the WAL byte volume per committed tuple.

Results land in ``BENCH_wal.json`` (override with
``REPRO_BENCH_WAL_JSON``).  ``REPRO_BENCH_SCALE=small`` shrinks the
workload for CI smoke runs; ``python benchmarks/bench_wal.py --smoke``
is the self-contained CLI entry CI uses.
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import tempfile
import time
from pathlib import Path

from repro.model.relation import ConstraintRelation
from repro.model.schema import Attribute, Schema
from repro.model.tuples import point_tuple
from repro.model.types import AttributeKind, DataType
from repro.storage.wal import open_durable, wal_path_for

SCHEMA = Schema(
    [
        Attribute("id", DataType.STRING, AttributeKind.RELATIONAL),
        Attribute("x", DataType.RATIONAL, AttributeKind.CONSTRAINT),
    ]
)


def _batch(start: int, size: int):
    return [
        point_tuple(SCHEMA, {"id": f"t{start + i}", "x": start + i})
        for i in range(size)
    ]


def _run_ingest(path: Path, transactions: int, batch: int, fsync: bool) -> dict:
    """Commit ``transactions`` append transactions of ``batch`` tuples each;
    returns rates plus the resulting WAL byte volume."""
    with open_durable(path, fsync=fsync) as durable:
        with durable.begin() as txn:
            txn.put_relation("R", ConstraintRelation(SCHEMA, _batch(0, batch), "R"))
        started = time.perf_counter()
        for n in range(transactions):
            with durable.begin() as txn:
                txn.append_tuples("R", _batch((n + 1) * batch, batch))
        wall = time.perf_counter() - started
        wal_bytes = durable.wal.position
    tuples = transactions * batch
    return {
        "transactions": transactions,
        "batch_tuples": batch,
        "wall_seconds": wall,
        "txn_per_second": transactions / wall,
        "tuples_per_second": tuples / wall,
        "wal_bytes": wal_bytes,
        "wal_bytes_per_tuple": wal_bytes / max(tuples, 1),
    }


def _time_recovery(path: Path) -> dict:
    """Re-open the database and report how long recovery took and what it
    found (replayed records == 0 means the image alone carried the state)."""
    started = time.perf_counter()
    with open_durable(path, fsync=False) as durable:
        wall = time.perf_counter() - started
        report = durable.recovery
        rows = len(durable.database["R"])
    return {
        "wall_ms": wall * 1000.0,
        "replayed_records": report.replayed_records,
        "committed_transactions": report.committed_transactions,
        "rows_recovered": rows,
    }


def run_bench(transactions: int, batch: int) -> dict:
    """Drive the full ingest/recovery matrix and return the results doc."""
    workdir = Path(tempfile.mkdtemp(prefix="bench_wal_"))
    try:
        durable_path = workdir / "durable" / "db.cdb"
        durable_path.parent.mkdir()
        fast_path = workdir / "fast" / "db.cdb"
        fast_path.parent.mkdir()

        ingest_fsync = _run_ingest(durable_path, transactions, batch, fsync=True)
        ingest_nofsync = _run_ingest(fast_path, transactions, batch, fsync=False)

        # Worst-case recovery: the full history still lives in the log.
        recovery_replay = _time_recovery(durable_path)
        assert recovery_replay["replayed_records"] > 0
        expected_rows = (transactions + 1) * batch
        assert recovery_replay["rows_recovered"] == expected_rows

        # Best case: checkpoint folds the log into the image first.
        with open_durable(durable_path, fsync=True) as durable:
            durable.checkpoint()
            assert durable.wal.position == len(wal_path_for(durable_path).read_bytes())
        recovery_checkpointed = _time_recovery(durable_path)
        assert recovery_checkpointed["replayed_records"] == 0
        assert recovery_checkpointed["rows_recovered"] == expected_rows

        return {
            "workload": (
                f"{transactions} txns x {batch} tuples, append-only ingest"
            ),
            "ingest_fsync": ingest_fsync,
            "ingest_no_fsync": ingest_nofsync,
            "fsync_slowdown": (
                ingest_nofsync["txn_per_second"] / ingest_fsync["txn_per_second"]
            ),
            "recovery_replay": recovery_replay,
            "recovery_checkpointed": recovery_checkpointed,
        }
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


def _write_results(results: dict) -> str:
    path = os.environ.get("REPRO_BENCH_WAL_JSON", "BENCH_wal.json")
    with open(path, "w") as handle:
        json.dump(results, handle, indent=2, sort_keys=True)
    return path


# --------------------------------------------------------------------------
# pytest entry points
# --------------------------------------------------------------------------

try:
    import pytest
except ImportError:  # pragma: no cover - CLI --smoke path without pytest
    pytest = None

if pytest is not None:

    @pytest.fixture(scope="module")
    def wal_results(scale) -> dict:
        small = scale.name == "small"
        results = run_bench(
            transactions=40 if small else 400,
            batch=5 if small else 25,
        )
        _write_results(results)
        return results

    def test_reports_ingest_rates(wal_results):
        assert wal_results["ingest_fsync"]["txn_per_second"] > 0
        assert wal_results["ingest_no_fsync"]["txn_per_second"] > 0
        assert wal_results["ingest_fsync"]["wal_bytes"] > 0

    def test_recovery_replays_full_history(wal_results):
        replay = wal_results["recovery_replay"]
        assert replay["committed_transactions"] == wal_results["ingest_fsync"]["transactions"] + 1
        assert replay["replayed_records"] > 0
        assert replay["wall_ms"] > 0

    def test_checkpoint_collapses_recovery(wal_results):
        checkpointed = wal_results["recovery_checkpointed"]
        assert checkpointed["replayed_records"] == 0
        assert (
            checkpointed["rows_recovered"]
            == wal_results["recovery_replay"]["rows_recovered"]
        )


# --------------------------------------------------------------------------
# CLI entry point (CI smoke)
# --------------------------------------------------------------------------


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument(
        "--smoke", action="store_true", help="small workload for CI smoke runs"
    )
    parser.add_argument("--transactions", type=int, default=None)
    parser.add_argument("--batch", type=int, default=None)
    args = parser.parse_args(argv)

    transactions = (
        args.transactions
        if args.transactions is not None
        else (40 if args.smoke else 400)
    )
    batch = args.batch if args.batch is not None else (5 if args.smoke else 25)
    results = run_bench(transactions=transactions, batch=batch)
    path = _write_results(results)
    print(
        f"bench_wal: {transactions} txns, "
        f"fsync={results['ingest_fsync']['txn_per_second']:.0f} txn/s, "
        f"no-fsync={results['ingest_no_fsync']['txn_per_second']:.0f} txn/s, "
        f"replay={results['recovery_replay']['wall_ms']:.1f}ms "
        f"({results['recovery_replay']['replayed_records']} records), "
        f"checkpointed={results['recovery_checkpointed']['wall_ms']:.1f}ms -> {path}"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
