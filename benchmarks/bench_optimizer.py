"""Ablation: the CQA optimizer (operator reordering + index selection).

Section 1.1: "CQA queries can be optimized for efficient evaluation,
through the use of indexing and through operator reordering."  These
benches time the same queries with the optimizer on and off, and an
indexed selection against the full-scan plan.
"""

import pytest

from repro.indexing import JointIndex
from repro.query import QuerySession
from repro.workloads import paper_queries

#: The query that benefits most from pushdown: selection above a join.
PUSHDOWN_SCRIPT = paper_queries()["q3_names_hit_4_9"]


@pytest.mark.parametrize("use_optimizer", [True, False], ids=["optimized", "unoptimized"])
def test_pushdown_on_scaled_hurricane(benchmark, scaled_hurricane_db, use_optimizer):
    def run():
        return QuerySession(
            scaled_hurricane_db, use_optimizer=use_optimizer
        ).run_script(PUSHDOWN_SCRIPT)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["result_tuples"] = len(result)


def _spatial_db_and_indexes(gis_scenario):
    db = gis_scenario.to_database()
    indexes = {
        "Parcels": {
            frozenset({"x", "y"}): JointIndex(db["Parcels"], ["x", "y"], max_entries=16)
        }
    }
    return db, indexes


SPATIAL_SCRIPT = (
    "R0 = select 0 <= x, x <= 15, 0 <= y, y <= 15 from Parcels\n"
    "R1 = project R0 on fid\n"
)


def test_selection_with_index(benchmark, gis_scenario):
    db, indexes = _spatial_db_and_indexes(gis_scenario)

    def run():
        session = QuerySession(db, indexes=indexes)
        return session.run_script(SPATIAL_SCRIPT), session.metrics

    result, metrics = benchmark(run)
    benchmark.extra_info["result_tuples"] = len(result)
    benchmark.extra_info["index_candidates"] = metrics.index_candidates
    assert metrics.operator_calls.get("index_scan") == 1


def test_selection_full_scan(benchmark, gis_scenario):
    db, _ = _spatial_db_and_indexes(gis_scenario)

    def run():
        return QuerySession(db).run_script(SPATIAL_SCRIPT)

    result = benchmark(run)
    benchmark.extra_info["result_tuples"] = len(result)


def test_index_scan_prunes_satisfiability_checks(benchmark, gis_scenario):
    """The payoff metric: tuples examined, not wall-clock (exact rational
    satisfiability dominates evaluation cost, so pruning candidates is the
    whole game)."""
    db, indexes = _spatial_db_and_indexes(gis_scenario)

    def run():
        with_index = QuerySession(db, indexes=indexes)
        with_index.run_script(SPATIAL_SCRIPT)
        without_index = QuerySession(db)
        without_index.run_script(SPATIAL_SCRIPT)
        return with_index.metrics, without_index.metrics

    indexed, scanned = benchmark.pedantic(run, rounds=1, iterations=1)
    total_parcels = len(db["Parcels"])
    benchmark.extra_info["candidates_with_index"] = indexed.index_candidates
    benchmark.extra_info["tuples_without_index"] = total_parcels
    assert indexed.index_candidates < total_parcels
