"""Experiment 3 — low joint selectivity: linear vs logarithmic.

Regenerates the reconstructed experiment 3 (see EXPERIMENTS.md): 500
half-open ``x < a ∧ y > b`` queries over diagonally correlated data, swept
over data sizes.  Shape (§5.3): the joint index reduces "the time
performance from linear to logarithmic in the size of data".
"""

from repro.experiments import expt3, print_result


def test_experiment3_low_joint_selectivity(benchmark, scale):
    result = benchmark.pedantic(
        lambda: expt3.run(
            data_sizes=scale.expt3_sizes, query_count=scale.expt3_query_count
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print_result(result)
    (series,) = result.series
    points = sorted(series.measurements, key=lambda m: m.x_value)
    smallest, largest = points[0], points[-1]
    growth = largest.x_value / smallest.x_value
    separate_growth = largest.separate_accesses / max(1, smallest.separate_accesses)
    joint_growth = largest.joint_accesses / max(1, smallest.joint_accesses)
    benchmark.extra_info["scale"] = scale.name
    benchmark.extra_info["data_growth"] = growth
    benchmark.extra_info["separate_access_growth"] = round(separate_growth, 2)
    benchmark.extra_info["joint_access_growth"] = round(joint_growth, 2)
    benchmark.extra_info["advantage_at_largest"] = round(
        largest.separate_accesses / max(1, largest.joint_accesses), 1
    )
    # Separate grows with the data (linear retrieval of ~half the tuples
    # from each 1-D index); joint stays flat (descends to an empty corner).
    assert separate_growth > growth / 2
    assert joint_growth <= 2.0
    assert largest.joint_accesses * 4 < largest.separate_accesses
