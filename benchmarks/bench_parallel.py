"""A/B benchmark: serial vs morsel-parallel execution (repro.exec).

Two comparisons on the Figure 4 experiment harness:

* **workers=1 overhead** — the parallel engine must cost *nothing* when
  disabled: ``fig4.run(workers=1)`` is the exact pre-engine code path
  (no engine constructed; the operator gate is one thread-local peek),
  so its best-of-N time must stay within 2% of the serial call.
* **workers=4 speedup** — on a machine with ≥ 4 cores, dispatching the
  four (variant × strategy) series to a process pool must run Figure 4
  at least 1.7× faster than serial.  On smaller runners (CI smoke, the
  1-CPU container) the speedup assertion self-skips — there is no
  parallel hardware to measure — while the A/B numbers still land in
  the JSON artifact.

Arms are timed best-of-``_ROUNDS`` interleaved (the established idiom of
``bench_governor.py``): best-of-N measures each configuration's
achievable floor rather than the average of its interruptions.  Results
land in ``BENCH_parallel.json`` (override with
``REPRO_BENCH_PARALLEL_JSON``) so CI can archive them.
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.experiments import fig4

_ROUNDS = 3
_PARALLEL_WORKERS = 4


def _cpu_count() -> int:
    return os.cpu_count() or 1


def _time_once(kwargs: dict, workers: int) -> float:
    start = time.perf_counter()
    result = fig4.run(workers=workers, **kwargs)
    elapsed = time.perf_counter() - start
    assert len(result.series) == 2  # both panels actually ran
    return elapsed


@pytest.fixture(scope="module")
def parallel_results(scale) -> dict:
    kwargs = {"data_size": scale.data_size, "query_count": scale.query_count}
    _time_once(kwargs, 1)  # warm-up: imports, allocator, caches
    serial, single, parallel = [], [], []
    for _ in range(_ROUNDS):
        serial.append(_time_once(kwargs, 1))
        single.append(_time_once(kwargs, 1))
        parallel.append(_time_once(kwargs, _PARALLEL_WORKERS))
    best_serial = min(serial)
    best_single = min(single)
    best_parallel = min(parallel)
    results = {
        "workload": f"figure-4 ({scale.name} scale)",
        "rounds": _ROUNDS,
        "cpu_count": _cpu_count(),
        "workers": _PARALLEL_WORKERS,
        "serial_best_seconds": best_serial,
        "workers1_best_seconds": best_single,
        "parallel_best_seconds": best_parallel,
        "workers1_overhead_fraction": best_single / best_serial - 1.0,
        "speedup": best_serial / best_parallel,
    }
    path = os.environ.get("REPRO_BENCH_PARALLEL_JSON", "BENCH_parallel.json")
    with open(path, "w") as handle:
        json.dump(results, handle, indent=2, sort_keys=True)
    return results


def test_workers1_is_free(parallel_results):
    """workers=1 must be the serial code path: within 2% of serial.

    Both arms run the identical code (workers=1 never constructs an
    engine), so this guards against the gate itself growing a cost."""
    assert parallel_results["workers1_overhead_fraction"] < 0.02


def test_parallel_speedup(parallel_results):
    """≥ 1.7× on fig4 at workers=4 — only meaningful with ≥ 4 cores."""
    if _cpu_count() < 4:
        pytest.skip(
            f"speedup needs >= 4 cores, this machine has {_cpu_count()}; "
            "A/B numbers still recorded in BENCH_parallel.json"
        )
    assert parallel_results["speedup"] >= 1.7


def test_parallel_measurements_identical(scale):
    """The A/B is only valid if both arms measure the same experiment."""
    kwargs = {
        "data_size": min(scale.data_size, 500),
        "query_count": min(scale.query_count, 20),
    }
    serial = fig4.run(workers=1, **kwargs)
    parallel = fig4.run(workers=2, **kwargs)
    for s, p in zip(serial.series, parallel.series):
        assert s.label == p.label
        assert s.measurements == p.measurements


def test_fig4_parallel(benchmark, scale):
    benchmark(
        lambda: _time_once(
            {"data_size": scale.data_size, "query_count": scale.query_count},
            _PARALLEL_WORKERS,
        )
    )
