"""Overhead benchmark for the query resource governor.

The governor's checkpoints are threaded through the solver, elimination,
DNF manipulation, the operators, and the storage layer — hot paths all.
The acceptance criterion from the issue is that governing a query with a
budget it never exhausts costs **under 3%** wall clock on the Figure 4
workload (index-backed range queries over constraint and relational
attributes, the repo's flagship experiment).

Each arm is timed best-of-``_ROUNDS`` with the arms interleaved, which
suppresses most scheduler noise: best-of-N measures the achievable floor
of each configuration rather than the average of its interruptions.
Results land in ``BENCH_governor.json`` (override with
``REPRO_BENCH_GOVERNOR_JSON``) so CI can archive them.
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.experiments import fig4
from repro.governor import Budget

_ROUNDS = 3

#: Never-exhausted budget: every limit armed (so every checkpoint takes
#: its governed path) but roomy enough that nothing ever trips.
_INFINITE = dict(
    deadline_seconds=3_600.0,
    solver_steps=10**12,
    dnf_clauses=10**12,
    output_tuples=10**12,
    io_accesses=10**12,
)


def _fig4_kwargs(scale) -> dict:
    return {"data_size": scale.data_size, "query_count": scale.query_count}


def _time_once(governed: bool, kwargs: dict) -> float:
    start = time.perf_counter()
    if governed:
        with Budget(**_INFINITE).activate() as budget:
            fig4.run(**kwargs)
        assert not budget.truncated  # the workload must fit the budget
    else:
        fig4.run(**kwargs)
    return time.perf_counter() - start


@pytest.fixture(scope="module")
def overhead_results(scale) -> dict:
    kwargs = _fig4_kwargs(scale)
    _time_once(False, kwargs)  # warm-up: imports, allocator, caches
    ungoverned, governed = [], []
    for _ in range(_ROUNDS):
        ungoverned.append(_time_once(False, kwargs))
        governed.append(_time_once(True, kwargs))
    best_ungoverned, best_governed = min(ungoverned), min(governed)
    results = {
        "workload": f"figure-4 ({scale.name} scale)",
        "rounds": _ROUNDS,
        "ungoverned_best_seconds": best_ungoverned,
        "governed_best_seconds": best_governed,
        "overhead_fraction": best_governed / best_ungoverned - 1.0,
    }
    path = os.environ.get("REPRO_BENCH_GOVERNOR_JSON", "BENCH_governor.json")
    with open(path, "w") as handle:
        json.dump(results, handle, indent=2, sort_keys=True)
    return results


def test_governor_overhead_under_three_percent(overhead_results):
    assert overhead_results["overhead_fraction"] < 0.03


def test_fig4_governed(benchmark, scale):
    benchmark(lambda: _time_once(True, _fig4_kwargs(scale)))
