"""Figure 5 — querying one attribute: joint vs separate indexes.

Regenerates the paper's Figure 5 series (disk accesses vs query length for
experiments 2-A and 2-B).  Shape: "it is better to have separate indices
when queries only use one attribute", but by a smaller factor than the
joint advantage of Figure 4.
"""

from conftest import run_fig4, run_fig5

from repro.experiments import print_result


def test_figure5_one_attribute_queries(benchmark, scale):
    result = benchmark.pedantic(lambda: run_fig5(scale), rounds=1, iterations=1)
    print()
    print_result(result)
    benchmark.extra_info["scale"] = scale.name
    for series in result.series:
        key = "2A" if "2-A" in series.label else "2B"
        benchmark.extra_info[f"{key}_joint_mean_accesses"] = round(series.mean_joint, 2)
        benchmark.extra_info[f"{key}_separate_mean_accesses"] = round(series.mean_separate, 2)
        assert series.mean_separate <= series.mean_joint, series.label


def test_figure5_advantage_smaller_than_figure4(benchmark, scale):
    """The cross-figure claim of §5.4.2: the separate advantage here 'is
    not as significant as the advantage of joint indices when queries use
    both attributes'."""

    def both():
        return run_fig4(scale), run_fig5(scale)  # cached within the session

    f4, f5 = benchmark.pedantic(both, rounds=1, iterations=1)
    fig4_margin = max(s.joint_advantage for s in f4.series)
    fig5_margin = max(s.mean_joint / s.mean_separate for s in f5.series)
    benchmark.extra_info["fig4_joint_advantage"] = round(fig4_margin, 2)
    benchmark.extra_info["fig5_separate_advantage"] = round(fig5_margin, 2)
    assert fig5_margin < fig4_margin
