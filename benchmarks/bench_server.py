"""Load benchmark for the multi-tenant query server (`repro.server`).

``N`` concurrent clients (>= 8, per the acceptance criteria) hammer an
in-process server over real TCP sockets, each running a mixed request
stream: mostly well-formed selects/projections, plus a slice of
deliberately budget-exhausting requests.  Reported per run:

* **p50 / p99 latency** across all successful request round-trips,
* **qps** (completed requests / wall-clock),
* the count of structured 429-style exhaustion replies — every one of
  which is asserted to carry the taxonomy fields and *no* traceback
  text, i.e. budget exhaustion under load stays a structured wire
  outcome, never a stack dump.

Results land in ``BENCH_server.json`` (override with
``REPRO_BENCH_SERVER_JSON``).  ``REPRO_BENCH_SCALE=small`` shrinks the
stream for CI smoke runs; ``python benchmarks/bench_server.py --smoke``
is the self-contained CLI entry CI uses.
"""

from __future__ import annotations

import argparse
import json
import os
import statistics
import threading
import time

from repro.constraints import parse_constraints
from repro.model import ConstraintRelation, Database, HTuple, Schema, constraint, relational
from repro.server import ServerConfig, ServerThread

CLIENTS = 8  # acceptance floor: >= 8 concurrent clients

#: Every EXHAUST_EVERY-th request asks for an impossible output budget.
EXHAUST_EVERY = 4

_QUERIES = (
    "R0 = select t >= 25 from R",
    "R1 = select t <= 40 from R",
    "R2 = project R0 on id",
)


def _bench_database(rows: int) -> Database:
    schema = Schema([relational("id"), constraint("t")])
    tuples = [
        HTuple(
            schema,
            {"id": f"r{i}"},
            parse_constraints(f"{i % 50} <= t, t <= {i % 50 + 25}"),
        )
        for i in range(rows)
    ]
    return Database({"R": ConstraintRelation(schema, tuples, "R")})


def _client_loop(harness, tenant: str, requests: int, out: dict) -> None:
    """One client's request stream; records latencies and reply audits."""
    latencies: list[float] = []
    exhausted: list[dict] = []
    failures: list[dict] = []
    with harness.client(tenant=tenant) as client:
        for i in range(requests):
            if i % EXHAUST_EVERY == EXHAUST_EVERY - 1:
                payload = {
                    "op": "query",
                    "tenant": tenant,
                    "statement": "X = select t >= 0 from R",
                    "budget": {"output_tuples": 2},
                }
            else:
                payload = {
                    "op": "query",
                    "tenant": tenant,
                    "statement": _QUERIES[i % len(_QUERIES)],
                }
            start = time.perf_counter()
            reply = client.request(payload)
            latencies.append(time.perf_counter() - start)
            if reply.get("ok"):
                continue
            if reply.get("status") == 429:
                exhausted.append(reply)
            else:
                failures.append(reply)
    out[tenant] = {
        "latencies": latencies,
        "exhausted": exhausted,
        "failures": failures,
    }


def _audit_exhaustion_reply(reply: dict) -> None:
    """A 429 under load must be the structured taxonomy reply."""
    error = reply["error"]
    assert error["kind"] == "output_limit_exceeded", error
    assert error["resource"] == "output_tuples", error
    assert error["consumed"] > error["limit"], error
    text = json.dumps(reply)
    assert "Traceback" not in text, "raw traceback leaked onto the wire"
    assert "  File \"" not in text, "raw traceback leaked onto the wire"


def run_load(rows: int, requests_per_client: int, clients: int = CLIENTS) -> dict:
    """Drive the full load and return the results document."""
    database = _bench_database(rows)
    config = ServerConfig(workers=4, max_queue=clients * 2)
    with ServerThread(database, config) as harness:
        per_client: dict[str, dict] = {}
        threads = [
            threading.Thread(
                target=_client_loop,
                args=(harness, f"tenant{i}", requests_per_client, per_client),
            )
            for i in range(clients)
        ]
        started = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        wall = time.perf_counter() - started
        stats = harness.client().stats()

    latencies = sorted(
        lat for result in per_client.values() for lat in result["latencies"]
    )
    exhausted = [r for result in per_client.values() for r in result["exhausted"]]
    failures = [r for result in per_client.values() for r in result["failures"]]
    assert len(per_client) == clients, "a client thread died before reporting"
    assert not failures, f"unexpected non-429 failures under load: {failures[:3]}"
    assert exhausted, "the exhausting slice of the stream never tripped a 429"
    for reply in exhausted:
        _audit_exhaustion_reply(reply)

    total = len(latencies)
    quantiles = statistics.quantiles(latencies, n=100)
    return {
        "workload": f"{clients} clients x {requests_per_client} requests, {rows} rows",
        "clients": clients,
        "requests_per_client": requests_per_client,
        "total_requests": total,
        "wall_seconds": wall,
        "qps": total / wall,
        "latency_p50_ms": statistics.median(latencies) * 1000.0,
        "latency_p99_ms": quantiles[98] * 1000.0,
        "exhausted_429_count": len(exhausted),
        "server_counters": {
            k: v for k, v in stats["counters"].items() if k.startswith("server.")
        },
    }


def _write_results(results: dict) -> str:
    path = os.environ.get("REPRO_BENCH_SERVER_JSON", "BENCH_server.json")
    with open(path, "w") as handle:
        json.dump(results, handle, indent=2, sort_keys=True)
    return path


# --------------------------------------------------------------------------
# pytest entry points
# --------------------------------------------------------------------------

try:
    import pytest
except ImportError:  # pragma: no cover - CLI --smoke path without pytest
    pytest = None

if pytest is not None:

    @pytest.fixture(scope="module")
    def server_results(scale) -> dict:
        small = scale.name == "small"
        results = run_load(
            rows=120 if small else 600,
            requests_per_client=8 if small else 40,
        )
        _write_results(results)
        return results

    def test_reports_required_percentiles(server_results):
        assert server_results["clients"] >= 8
        assert server_results["latency_p50_ms"] > 0
        assert server_results["latency_p99_ms"] >= server_results["latency_p50_ms"]
        assert server_results["qps"] > 0

    def test_exhaustion_under_load_is_structured(server_results):
        """Covered per-reply inside run_load; assert the volume here."""
        expected = server_results["total_requests"] // EXHAUST_EVERY
        assert server_results["exhausted_429_count"] == expected
        assert server_results["server_counters"]["server.exhausted"] == expected

    def test_every_request_was_accounted(server_results):
        counters = server_results["server_counters"]
        # +1: the stats request itself.
        assert counters["server.requests"] == server_results["total_requests"] + 1
        assert counters["server.replies.error"] == server_results["exhausted_429_count"]
        assert counters.get("server.shed", 0) == 0  # queue sized to never shed


# --------------------------------------------------------------------------
# CLI entry point (CI smoke)
# --------------------------------------------------------------------------


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument(
        "--smoke", action="store_true", help="small workload for CI smoke runs"
    )
    parser.add_argument("--rows", type=int, default=None)
    parser.add_argument("--requests", type=int, default=None)
    parser.add_argument("--clients", type=int, default=CLIENTS)
    args = parser.parse_args(argv)

    rows = args.rows if args.rows is not None else (120 if args.smoke else 600)
    requests = args.requests if args.requests is not None else (8 if args.smoke else 40)
    results = run_load(rows=rows, requests_per_client=requests, clients=args.clients)
    path = _write_results(results)
    print(
        f"bench_server: {results['total_requests']} requests, "
        f"qps={results['qps']:.1f}, p50={results['latency_p50_ms']:.2f}ms, "
        f"p99={results['latency_p99_ms']:.2f}ms, "
        f"429s={results['exhausted_429_count']} -> {path}"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
