"""Ablation: the constraint-engine design choices DESIGN.md calls out.

* Fourier–Motzkin vs exact simplex as the satisfiability oracle;
* projection with and without redundancy elimination;
* the cost of CQA difference (DNF complement), the most expensive
  primitive.
"""

import random

from repro.constraints import Conjunction, DNFFormula, LinearConstraint, LinearExpression
from repro.constraints import elimination, simplex
from repro.constraints.atoms import Comparator


def _random_systems(count: int, variables: int, atoms: int, seed: int):
    rng = random.Random(seed)
    names = [f"v{i}" for i in range(variables)]
    systems = []
    for _ in range(count):
        system = []
        for _ in range(atoms):
            coeffs = {
                name: rng.randint(-3, 3) for name in rng.sample(names, rng.randint(1, variables))
            }
            coeffs = {k: v for k, v in coeffs.items() if v} or {names[0]: 1}
            comparator = rng.choice([Comparator.LE, Comparator.LE, Comparator.LT, Comparator.EQ])
            system.append(
                LinearConstraint(LinearExpression(coeffs, rng.randint(-10, 10)), comparator)
            )
        systems.append(system)
    return systems


SYSTEMS = _random_systems(count=60, variables=4, atoms=6, seed=8)


def test_satisfiability_fourier_motzkin(benchmark):
    def run():
        return [elimination.is_satisfiable(s) for s in SYSTEMS]

    results = benchmark(run)
    benchmark.extra_info["satisfiable"] = sum(results)


def test_satisfiability_simplex(benchmark):
    def run():
        return [simplex.is_satisfiable(s) for s in SYSTEMS]

    results = benchmark(run)
    benchmark.extra_info["satisfiable"] = sum(results)
    # Cross-check the two oracles while we are here.
    assert results == [elimination.is_satisfiable(s) for s in SYSTEMS]


PROJECTION_SYSTEMS = _random_systems(count=30, variables=4, atoms=7, seed=9)


def test_projection_raw(benchmark):
    def run():
        return [Conjunction(s).project(["v0"]) for s in PROJECTION_SYSTEMS]

    projected = benchmark(run)
    benchmark.extra_info["mean_atoms"] = round(
        sum(len(p) for p in projected) / len(projected), 1
    )


def test_projection_with_simplification(benchmark):
    def run():
        return [Conjunction(s).project(["v0"]).simplify() for s in PROJECTION_SYSTEMS]

    projected = benchmark(run)
    benchmark.extra_info["mean_atoms"] = round(
        sum(len(p) for p in projected) / len(projected), 1
    )


def test_dnf_complement(benchmark):
    formulas = [
        DNFFormula([Conjunction(s) for s in _random_systems(3, 2, 3, seed)])
        for seed in range(10, 16)
    ]

    def run():
        return [f.complement() for f in formulas]

    complements = benchmark(run)
    benchmark.extra_info["mean_disjuncts"] = round(
        sum(len(c) for c in complements) / len(complements), 1
    )
