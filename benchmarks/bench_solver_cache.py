"""A/B benchmark for the layered satisfiability front-end.

Two join workloads, each run with the fast paths enabled and disabled
(``solver.fast_path``):

* *scattered boxes* — most pairs don't overlap, so the interval layer
  should reject them without a full solve (and without even building the
  combined conjunction);
* *diagonal bands* — formulas drawn from a small pool of multi-variable
  systems, so the same combined system recurs many times and the memo
  cache answers the repeats.

The acceptance criterion from the issue — at least a 2x reduction in
``solver.satisfiability_checks`` (full decision-procedure solves) on a
join workload — is asserted here, and the measured counters are written
to ``BENCH_solver.json`` (override the path with
``REPRO_BENCH_SOLVER_JSON``) so CI can archive them.
"""

from __future__ import annotations

import json
import os
import random

import pytest

from repro.algebra.operators import natural_join
from repro.constraints import Conjunction, solver, var
from repro.constraints.atoms import ge, le
from repro.model.relation import ConstraintRelation
from repro.model.schema import Schema, constraint, relational
from repro.model.tuples import HTuple
from repro.obs import (
    MetricsRegistry,
    SATISFIABILITY_CHECKS,
    SOLVER_BOX_DECIDED,
    SOLVER_CACHE_HITS,
    SOLVER_CACHE_MISSES,
    SOLVER_INTERVAL_PRUNES,
    SOLVER_JOIN_PRUNES,
    SOLVER_REQUESTS,
)

_COUNTERS = (
    SOLVER_REQUESTS,
    SATISFIABILITY_CHECKS,
    SOLVER_CACHE_HITS,
    SOLVER_CACHE_MISSES,
    SOLVER_INTERVAL_PRUNES,
    SOLVER_JOIN_PRUNES,
    SOLVER_BOX_DECIDED,
)


def _scattered_boxes(name: str, n: int, x: str, y: str, seed: int) -> ConstraintRelation:
    """Small axis-aligned boxes scattered over a [0, 10n] range: joining
    two such relations on the shared attribute leaves most pairs disjoint."""
    rng = random.Random(seed)
    schema = Schema([constraint(x), constraint(y)])
    tuples = []
    for _ in range(n):
        lo_x, lo_y = rng.randint(0, 10 * n), rng.randint(0, 10 * n)
        formula = Conjunction.box(
            {x: (lo_x, lo_x + rng.randint(1, 8)), y: (lo_y, lo_y + rng.randint(1, 8))}
        )
        tuples.append(HTuple(schema, {}, formula))
    return ConstraintRelation(schema, tuples, name)


def _diagonal_bands(
    name: str, n: int, x: str, y: str, seed: int, pool: int = 10
) -> ConstraintRelation:
    """Diagonal bands ``2c <= x + y <= 2c + 2`` for c drawn from a small
    pool: the multi-variable atoms defeat the interval layer, and the
    repeated systems exercise the memo cache instead.  A per-relation id
    attribute keeps the tuples distinct (relations are sets) while their
    formulas repeat."""
    rng = random.Random(seed)
    schema = Schema([relational(f"{name}_id"), constraint(x), constraint(y)])
    tuples = []
    for i in range(n):
        c = rng.randrange(pool)
        formula = Conjunction(
            [
                ge(var(x), 0),
                le(var(x), pool),
                ge(var(x) + var(y), 2 * c),
                le(var(x) + var(y), 2 * c + 2),
            ]
        )
        tuples.append(HTuple(schema, {f"{name}_id": f"{name}{i}"}, formula))
    return ConstraintRelation(schema, tuples, name)


def _measure(build_left, build_right, enabled: bool) -> tuple[int, dict[str, int]]:
    """One join run under a fresh registry, cache and relation instances
    (tuple formulas memoise their own verdicts, so relations must not be
    shared between the two arms)."""
    solver.clear_caches()
    registry = MetricsRegistry()
    left, right = build_left(), build_right()
    with solver.fast_path(enabled), registry.activate():
        result = natural_join(left, right)
    return len(result), {name: registry.value(name) for name in _COUNTERS}


def _ab(build_left, build_right) -> dict:
    rows_off, off = _measure(build_left, build_right, enabled=False)
    rows_on, on = _measure(build_left, build_right, enabled=True)
    assert rows_on == rows_off  # the fast paths must not change results
    return {
        "rows": rows_on,
        "fast_path_off": off,
        "fast_path_on": on,
        "full_solve_reduction": (
            off[SATISFIABILITY_CHECKS] / on[SATISFIABILITY_CHECKS]
            if on[SATISFIABILITY_CHECKS]
            else float("inf")
        ),
    }


@pytest.fixture(scope="module")
def solver_sizes(scale) -> tuple[int, int]:
    """Join-side cardinalities: n x n pairs get a full solve with the fast
    paths off, so these stay far below ``scale.data_size``."""
    return (48, 64) if scale.name == "small" else (96, 128)


@pytest.fixture(scope="module")
def ab_results(solver_sizes) -> dict:
    n_boxes, n_bands = solver_sizes
    results = {
        "scattered_boxes": _ab(
            lambda: _scattered_boxes("A", n_boxes, "x", "y", seed=5),
            lambda: _scattered_boxes("B", n_boxes, "y", "z", seed=6),
        ),
        "diagonal_bands": _ab(
            lambda: _diagonal_bands("A", n_bands, "x", "y", seed=7),
            lambda: _diagonal_bands("B", n_bands, "y", "z", seed=8),
        ),
    }
    path = os.environ.get("REPRO_BENCH_SOLVER_JSON", "BENCH_solver.json")
    with open(path, "w") as handle:
        json.dump(results, handle, indent=2, sort_keys=True)
    return results


def test_interval_layer_halves_full_solves(ab_results):
    boxes = ab_results["scattered_boxes"]
    assert boxes["full_solve_reduction"] >= 2.0
    on = boxes["fast_path_on"]
    assert on[SOLVER_JOIN_PRUNES] > 0  # pairs rejected before conjoining


def test_cache_layer_halves_full_solves(ab_results):
    bands = ab_results["diagonal_bands"]
    assert bands["full_solve_reduction"] >= 2.0
    on = bands["fast_path_on"]
    assert on[SOLVER_CACHE_HITS] > on[SOLVER_CACHE_MISSES]


def test_join_scattered_boxes_fast_path_on(benchmark, solver_sizes):
    n, _ = solver_sizes

    def run():
        return _measure(
            lambda: _scattered_boxes("A", n, "x", "y", seed=5),
            lambda: _scattered_boxes("B", n, "y", "z", seed=6),
            enabled=True,
        )

    rows, counters = benchmark(run)
    benchmark.extra_info["rows"] = rows
    benchmark.extra_info["full_solves"] = counters[SATISFIABILITY_CHECKS]


def test_join_scattered_boxes_fast_path_off(benchmark, solver_sizes):
    n, _ = solver_sizes

    def run():
        return _measure(
            lambda: _scattered_boxes("A", n, "x", "y", seed=5),
            lambda: _scattered_boxes("B", n, "y", "z", seed=6),
            enabled=False,
        )

    rows, counters = benchmark(run)
    benchmark.extra_info["rows"] = rows
    benchmark.extra_info["full_solves"] = counters[SATISFIABILITY_CHECKS]
