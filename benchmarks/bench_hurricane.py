"""Figure 2 / §3.3 — the Hurricane case-study queries as benchmarks.

Times each of the five multi-step CQA scripts against the Figure 2
instance and against a scaled Hurricane database (parcels_per_side² land
parcels), recording result sizes — the functional reproduction of the
case study under measurement.
"""

import pytest

from repro.query import QuerySession
from repro.workloads import paper_queries

QUERIES = paper_queries()


@pytest.mark.parametrize("query_name", sorted(QUERIES))
def test_figure2_query(benchmark, hurricane_db, query_name):
    script = QUERIES[query_name]

    def run():
        return QuerySession(hurricane_db).run_script(script)

    result = benchmark(run)
    benchmark.extra_info["result_tuples"] = len(result)
    assert len(result) > 0


@pytest.mark.parametrize("query_name", sorted(QUERIES))
def test_scaled_hurricane_query(benchmark, scaled_hurricane_db, query_name):
    script = QUERIES[query_name]

    def run():
        return QuerySession(scaled_hurricane_db).run_script(script)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["result_tuples"] = len(result)
    benchmark.extra_info["land_parcels"] = len(scaled_hurricane_db["Land"])
