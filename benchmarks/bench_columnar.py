"""A/B benchmark: row vs columnar selection (repro.exec.columnar).

Two contracts on a scan-filter microbench (``select`` over a generated
box relation with selective interval predicates):

* **columnar speedup** — with the relation's summary block warmed (the
  steady state for repeated scans of an immutable relation, since blocks
  are cached on the relation keyed by variable tuple), the vectorized
  mask must beat the tuple-at-a-time exact interval path by ≥ 5× at
  paper scale.  The mask rejects a batch with a handful of numpy
  comparisons; row mode pays a per-tuple exact rational check.
* **bypass overhead** — when the filter cannot engage (predicates with
  no single-variable static bounds compile to no plan), columnar mode
  must cost < 3% over row mode: the probe is one thread-local peek plus
  one failed plan compilation per call.

Arms are timed best-of-``_ROUNDS`` interleaved (the idiom of
``bench_parallel.py``): best-of-N measures each arm's achievable floor
rather than the average of its interruptions.  Results land in
``BENCH_columnar.json`` (override with ``REPRO_BENCH_COLUMNAR_JSON``)
so CI can archive them.
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.algebra.operators import select
from repro.constraints import parse_constraints
from repro.exec import columnar_mode
from repro.workloads import build_constraint_relation, generate_data

_ROUNDS = 3

#: Selective box predicates: the columnar mask rejects almost every
#: tuple, which is the case the fast path exists for.
_SELECTIVE = "x >= 450, x <= 550, y >= 450, y <= 550"

#: No single-variable static bounds → ``selection_plan`` returns None
#: and the columnar probe bypasses to the row loop every call.
_UNPLANNABLE = "x + y >= 0"


def _time_select(relation, predicates, columnar_on: bool) -> float:
    with columnar_mode(columnar_on):
        start = time.perf_counter()
        result = select(relation, predicates)
        elapsed = time.perf_counter() - start
    assert result.schema == relation.schema  # the select actually ran
    return elapsed


@pytest.fixture(scope="module")
def columnar_results(scale) -> dict:
    relation = build_constraint_relation(generate_data(scale.data_size, seed=42))
    selective = parse_constraints(_SELECTIVE)
    unplannable = parse_constraints(_UNPLANNABLE)

    # Warm both arms: row mode's solver caches, columnar's summary block
    # (cached on the relation, so every timed columnar run is steady
    # state), and check the arms agree before timing them.
    row_out = select(relation, selective)
    with columnar_mode():
        col_out = select(relation, selective)
    assert list(row_out.tuples) == list(col_out.tuples)

    row, col, row_bypass, col_bypass = [], [], [], []
    for _ in range(_ROUNDS):
        row.append(_time_select(relation, selective, False))
        col.append(_time_select(relation, selective, True))
        row_bypass.append(_time_select(relation, unplannable, False))
        col_bypass.append(_time_select(relation, unplannable, True))

    best_row, best_col = min(row), min(col)
    best_row_bypass, best_col_bypass = min(row_bypass), min(col_bypass)
    results = {
        "workload": f"select scan-filter ({scale.name} scale, {scale.data_size} tuples)",
        "rounds": _ROUNDS,
        "selective_predicates": _SELECTIVE,
        "unplannable_predicates": _UNPLANNABLE,
        "row_best_seconds": best_row,
        "columnar_best_seconds": best_col,
        "speedup": best_row / best_col,
        "row_bypass_best_seconds": best_row_bypass,
        "columnar_bypass_best_seconds": best_col_bypass,
        "bypass_overhead_fraction": best_col_bypass / best_row_bypass - 1.0,
    }
    path = os.environ.get("REPRO_BENCH_COLUMNAR_JSON", "BENCH_columnar.json")
    with open(path, "w") as handle:
        json.dump(results, handle, indent=2, sort_keys=True)
    return results


def test_columnar_speedup(columnar_results, scale):
    """≥ 5× on the warmed scan-filter microbench at paper scale.

    At small scale (CI smoke) the fixed per-call costs dominate the
    tiny batch, so only a ≥ 2× floor is asserted; the exact A/B numbers
    still land in BENCH_columnar.json either way."""
    floor = 5.0 if scale.name == "paper" else 2.0
    assert columnar_results["speedup"] >= floor, columnar_results


def test_bypass_overhead_is_negligible(columnar_results):
    """When the filter cannot engage, columnar mode must be free
    (< 3%): one thread-local peek and one rejected plan compilation."""
    assert columnar_results["bypass_overhead_fraction"] < 0.03, columnar_results


def test_columnar_select(benchmark, scale):
    relation = build_constraint_relation(generate_data(scale.data_size, seed=42))
    predicates = parse_constraints(_SELECTIVE)
    with columnar_mode():
        select(relation, predicates)  # warm the summary block
        benchmark(lambda: select(relation, predicates))
