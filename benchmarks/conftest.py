"""Shared benchmark configuration.

``REPRO_BENCH_SCALE=small`` shrinks every workload for quick iteration;
the default regenerates the paper's scales (10,000 boxes, 100/500 queries)
— a full ``pytest benchmarks/ --benchmark-only`` run takes a few minutes.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import pytest


@dataclass(frozen=True)
class BenchScale:
    name: str
    data_size: int
    query_count: int
    expt3_query_count: int
    expt3_sizes: tuple[int, ...]
    hurricane_side: int
    gis_side: int


PAPER = BenchScale(
    name="paper",
    data_size=10_000,
    query_count=100,
    expt3_query_count=500,
    expt3_sizes=(1_000, 2_000, 4_000, 8_000, 16_000),
    hurricane_side=8,
    gis_side=8,
)

SMALL = BenchScale(
    name="small",
    data_size=1_500,
    query_count=40,
    expt3_query_count=60,
    expt3_sizes=(500, 1_000, 2_000),
    hurricane_side=4,
    gis_side=5,
)


@pytest.fixture(scope="session")
def scale() -> BenchScale:
    return SMALL if os.environ.get("REPRO_BENCH_SCALE") == "small" else PAPER


_RESULT_CACHE: dict[tuple, object] = {}


def run_fig4(scale: BenchScale):
    """Figure 4 at this scale, computed once per session (the cross-figure
    bench reuses the result instead of re-running two multi-minute
    experiments)."""
    key = ("fig4", scale.name)
    if key not in _RESULT_CACHE:
        from repro.experiments import fig4

        _RESULT_CACHE[key] = fig4.run(
            data_size=scale.data_size, query_count=scale.query_count
        )
    return _RESULT_CACHE[key]


def run_fig5(scale: BenchScale):
    key = ("fig5", scale.name)
    if key not in _RESULT_CACHE:
        from repro.experiments import fig5

        _RESULT_CACHE[key] = fig5.run(
            data_size=scale.data_size, query_count=scale.query_count
        )
    return _RESULT_CACHE[key]


@pytest.fixture(scope="session")
def hurricane_db():
    from repro.workloads import figure2_database

    return figure2_database()


@pytest.fixture(scope="session")
def scaled_hurricane_db(scale):
    from repro.workloads import generate_hurricane_database

    return generate_hurricane_database(parcels_per_side=scale.hurricane_side)


@pytest.fixture(scope="session")
def gis_scenario(scale):
    from repro.workloads import generate_gis_scenario

    return generate_gis_scenario(
        parcels_per_side=scale.gis_side, roads=4, shelters=12, seed=99
    )
