"""Ablations on the R*-tree: forced reinsert and page size.

The R* paper's signature improvement is forced reinsertion; the page size
(node fanout) trades tree height against per-node scan cost.  Both knobs
move the disk-access counts of the section 5.4 experiments — these benches
quantify by how much in our reproduction.
"""

import pytest

from repro.indexing import MBR, JointIndex, RStarTree
from repro.storage import PageConfig
from repro.workloads import rectangles

DATA = rectangles.generate_data(3000, seed=21)
QUERIES = rectangles.generate_queries(60, seed=22)
RELATION = rectangles.build_constraint_relation(DATA)


def _query_accesses(index: JointIndex) -> float:
    index.reset_counters()
    for query in QUERIES:
        index.query(rectangles.query_box_two_attributes(query))
    return index.accesses / len(QUERIES)


@pytest.mark.parametrize("forced_reinsert", [True, False], ids=["reinsert", "no-reinsert"])
def test_build_with_and_without_forced_reinsert(benchmark, forced_reinsert):
    def build():
        return JointIndex(
            RELATION, ["x", "y"], max_entries=32, forced_reinsert=forced_reinsert
        )

    index = benchmark.pedantic(build, rounds=1, iterations=1)
    benchmark.extra_info["nodes"] = index.tree.node_count
    benchmark.extra_info["mean_query_accesses"] = round(_query_accesses(index), 2)


def test_forced_reinsert_improves_queries(benchmark):
    def both():
        with_fr = JointIndex(RELATION, ["x", "y"], max_entries=32, forced_reinsert=True)
        without_fr = JointIndex(RELATION, ["x", "y"], max_entries=32, forced_reinsert=False)
        return _query_accesses(with_fr), _query_accesses(without_fr)

    with_fr, without_fr = benchmark.pedantic(both, rounds=1, iterations=1)
    benchmark.extra_info["mean_accesses_with_reinsert"] = round(with_fr, 2)
    benchmark.extra_info["mean_accesses_without_reinsert"] = round(without_fr, 2)
    # R* packing should never be (meaningfully) worse, and is usually better.
    assert with_fr <= without_fr * 1.05


@pytest.mark.parametrize("page_size", [1024, 2048, 4096, 8192])
def test_page_size_sweep(benchmark, page_size):
    config = PageConfig(page_size=page_size)

    def build_and_query():
        index = JointIndex(RELATION, ["x", "y"], config=config)
        return index, _query_accesses(index)

    index, accesses = benchmark.pedantic(build_and_query, rounds=1, iterations=1)
    benchmark.extra_info["fanout"] = config.index_fanout(2)
    benchmark.extra_info["height"] = index.tree.height
    benchmark.extra_info["mean_query_accesses"] = round(accesses, 2)


def test_str_bulk_load_build(benchmark):
    """STR packing vs repeated insertion: build time and packing."""
    from repro.indexing import str_bulk_load_relation

    def build():
        return str_bulk_load_relation(RELATION, ["x", "y"], max_entries=32)

    tree = benchmark.pedantic(build, rounds=1, iterations=1)
    benchmark.extra_info["nodes"] = tree.node_count
    # Query quality: reuse the standard query set via a JointIndex shim.
    joint = JointIndex(RELATION, ["x", "y"], max_entries=32)
    joint.tree = tree
    benchmark.extra_info["mean_query_accesses"] = round(_query_accesses(joint), 2)


def test_point_query_throughput(benchmark):
    index = JointIndex(RELATION, ["x", "y"], max_entries=32)
    probes = [
        {"x": (float(i % 3000), float(i % 3000)), "y": (float((i * 7) % 3000), float((i * 7) % 3000))}
        for i in range(100)
    ]

    def run():
        return sum(len(index.query(p)) for p in probes)

    benchmark(run)


def test_knn_throughput(benchmark):
    tree = RStarTree(dimensions=2, max_entries=32)
    for i, rect in enumerate(DATA):
        x0, x1 = rect.x_interval
        y0, y1 = rect.y_interval
        tree.insert(MBR((x0, y0), (x1, y1)), i)

    def run():
        return [tree.nearest(MBR.point((x * 30.0, x * 30.0)), k=5) for x in range(100)]

    benchmark(run)
