"""Section 6.2 — constraint vs vector representation cost.

Times the two conversions the paper calls out as expensive (digitised
points → constraints and back via vertex enumeration) and records the
storage-cost table quantifying both redundancies.
"""

from repro.experiments import representation
from repro.spatial import ConvexPolygon, FeatureSet


def test_representation_cost_table(benchmark):
    rows = benchmark.pedantic(representation.run, rounds=1, iterations=1)
    print()
    print(representation.format_table(rows))
    largest_polyline = max(
        (r for r in rows if r.kind == "polyline"), key=lambda r: r.segments
    )
    benchmark.extra_info["polyline_coordinate_ratio"] = round(
        largest_polyline.coordinate_ratio, 2
    )
    # The constraint representation stores ~2.5x the coordinates of the
    # vector representation for linear features (3 atoms per segment vs
    # one shared point per vertex), growing with feature complexity.
    assert largest_polyline.coordinate_ratio > 2.0


def test_nested_model_eliminates_attribute_duplication(benchmark):
    """Section 6.2's other fix: Dedale's nested model stores non-spatial
    attributes once per feature instead of once per convex part."""
    from repro.model import nest

    star = representation._star_region(10)
    relation = FeatureSet([star.to_feature()]).to_relation()

    def run():
        return nest(relation)

    nested = benchmark(run)
    cost = nested.storage_cost()
    benchmark.extra_info["flat_relational_values"] = cost["flat_relational_values"]
    benchmark.extra_info["nested_relational_values"] = cost["relational_values"]
    assert cost["relational_values"] < cost["flat_relational_values"]
    # Redundancy 2 (shared boundary constraints) is untouched by nesting.
    assert cost["constraints"] == sum(len(t.formula) for t in relation)


def test_vector_to_constraint_conversion(benchmark):
    """Digitisation → constraint store: triangulate + emit half-planes."""
    star = representation._star_region(12)

    def convert():
        return star.to_feature()

    feature = benchmark(convert)
    benchmark.extra_info["convex_parts"] = len(feature.parts)


def test_constraint_to_vector_conversion(benchmark):
    """Constraint store → display: vertex enumeration per tuple (the
    reverse conversion of section 6.2)."""
    star = representation._star_region(12)
    relation = FeatureSet([star.to_feature()]).to_relation()

    def enumerate_vertices():
        return [
            ConvexPolygon.from_conjunction(t.formula) for t in relation
        ]

    polygons = benchmark(enumerate_vertices)
    benchmark.extra_info["polygons"] = len(polygons)
